// Package serve is the alias-query daemon: it loads a program once and
// answers MayAlias / PointsTo / Lockset queries over HTTP/JSON, solving
// clusters lazily on first touch through the bootstrapped cascade.
//
// The package is the robustness layer between the analysis and the
// network:
//
//   - Single-flight solves: N concurrent cold queries on one cluster
//     trigger exactly one solve (core.EnsureCluster); the rest wait.
//   - Per-query deadlines with graceful degradation: a query whose
//     deadline expires mid-solve answers at Andersen precision, tagged
//     degraded:true — never an error, never a hang.
//   - Bounded admission: cold queries beyond the configured queue depth
//     are shed with 429 + Retry-After; warm queries (all clusters
//     already solved) bypass the queue entirely.
//   - Snapshot isolation: POST /reload analyzes the new program off to
//     the side and atomically swaps it in; in-flight queries finish on
//     the old snapshot, failed reloads leave the old one serving.
//   - Lifecycle: /healthz, /readyz, graceful drain, panic-isolated
//     handlers.
package serve

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
	"bootstrap/internal/faults"
	"bootstrap/internal/obs"
)

// Config configures a Server. The zero value is usable: lazy analysis
// with an in-memory result cache, a 2s query deadline, a queue depth of
// 64 and GOMAXPROCS concurrent solves.
type Config struct {
	// Analysis is the underlying core configuration. The server forces
	// Lazy mode (engines solve at query time), clears Demand (the cover
	// must span every pointer a client may ask about) and, when no cache
	// is set, installs a process-local in-memory result cache so reloads
	// of similar programs start warm.
	Analysis core.Config

	// QueryTimeout is the per-query deadline (default 2s). A request may
	// lower it via timeout_ms but never raise it.
	QueryTimeout time.Duration

	// QueueDepth bounds how many cold queries may be waiting for a solve
	// slot before the server sheds load with 429 (0 defaults to 64;
	// negative means no queue at all — shed whenever no slot is free).
	QueueDepth int

	// MaxSolves bounds how many cluster solves run concurrently
	// (default GOMAXPROCS). Warm queries are not counted.
	MaxSolves int

	// MaxBodyBytes bounds query request bodies (default 1 MiB). Reload
	// bodies get 64 MiB — programs are big, queries are not.
	MaxBodyBytes int64

	// DrainTimeout bounds graceful shutdown (default 10s); exported so
	// cmd/aliasd and tests share one knob.
	DrainTimeout time.Duration

	// EditTimeout bounds each POST /edit batch's incremental re-solve
	// (default 15s; a request may lower it via timeout_ms). On expiry the
	// affected clusters degrade through the analysis' retry ladder — the
	// edit still lands and the snapshot still swaps.
	EditTimeout time.Duration

	// Regen, when non-nil, lets POST /reload regenerate the program
	// without shipping source over the wire: cmd/aliasd re-reads the
	// program file, or re-synthesizes the -synth workload salted by the
	// request's variant number. A reload body with explicit source
	// bypasses it.
	Regen func(variant int) (desc, src string, err error)

	// AllowChaos mounts POST /chaos, letting clients arm deterministic
	// fault injection (solve faults, latency spikes, reload pauses) on a
	// live server. Off by default: chaos is opt-in at boot.
	AllowChaos bool

	// Injector receives the serve-side faults (nil: one is created when
	// AllowChaos is set, otherwise injection is permanently off).
	Injector *faults.ServeInjector

	Metrics *obs.Metrics
	Tracer  *obs.Tracer
}

// queryLanes is how many trace tracks per-query spans hash over.
const queryLanes = 8

// Server is the daemon: an http.Handler plus the snapshot/admission
// machinery behind it. Create with New, publish a first snapshot with
// Load, then serve Handler().
type Server struct {
	cfg  Config
	acfg core.Config // the forced-lazy analysis config snapshots use

	plan *faults.Plan // solve-time fault plan (shared with acfg.Faults)
	inj  *faults.ServeInjector

	snap     atomic.Pointer[Snapshot]
	reloadMu sync.Mutex // serializes swap() and edit application; queries never take it

	// Edit coalescing: concurrent POST /edit batches queue here; whoever
	// holds reloadMu drains the queue and publishes one snapshot for all
	// of them (see edit.go).
	editMu sync.Mutex
	editQ  []*editWaiter

	// Live subscriptions (GET /subscribe) and the recent-query ring the
	// invalidation events are derived from (see stream.go).
	subMu sync.Mutex
	subs  map[*subscriber]struct{}
	ring  queryRing

	handlerOnce sync.Once
	handler     http.Handler

	draining atomic.Bool
	waiting  atomic.Int64  // cold queries queued for admission right now
	solveSem chan struct{} // bounds concurrent cluster solves
	lane     atomic.Int64  // round-robin trace lane

	// coldEWMA tracks recent cold-query latency (microseconds) to give
	// shed clients an honest Retry-After.
	coldEWMA atomic.Int64

	mQueries     *obs.Counter
	mWarm        *obs.Counter
	mCold        *obs.Counter
	mDegraded    *obs.Counter
	mShed        *obs.Counter
	mReloads     *obs.Counter
	mReloadFail  *obs.Counter
	mPanics      *obs.Counter
	mEdits       *obs.Counter
	mEditFail    *obs.Counter
	mEditFellTo  *obs.Counter
	mCoalesced   *obs.Counter
	mInvalidated *obs.Counter
	hQuery       *obs.Histogram
	hCold        *obs.Histogram
	hEdit        *obs.Histogram
}

// New builds a Server from cfg. It does not load a program: call Load
// (or serve /reload) to publish the first snapshot; until then /readyz
// reports 503 and queries fail with 503.
func New(cfg Config) *Server {
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.MaxSolves <= 0 {
		cfg.MaxSolves = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.EditTimeout <= 0 {
		cfg.EditTimeout = 15 * time.Second
	}

	acfg := cfg.Analysis
	acfg.Lazy = true
	acfg.Demand = nil
	acfg.Metrics = cfg.Metrics
	acfg.Tracer = cfg.Tracer
	if acfg.Cache == nil {
		acfg.Cache = cache.New(cache.Options{})
	}
	if acfg.ClusterTimeout <= 0 {
		// Bound each ladder attempt: a cluster the deadline abandoned
		// should still land (for future queries) in bounded time.
		acfg.ClusterTimeout = 2 * cfg.QueryTimeout
	}

	s := &Server{cfg: cfg, inj: cfg.Injector, subs: map[*subscriber]struct{}{}}
	if cfg.AllowChaos {
		// One mutable plan for the server's lifetime: /chaos re-arms it
		// under live traffic. While nothing is armed, Plan.Active() is
		// false and the result cache stays on.
		if acfg.Faults != nil {
			s.plan = acfg.Faults
		} else {
			s.plan = faults.NewPlan()
			acfg.Faults = s.plan
		}
		if s.inj == nil {
			s.inj = faults.NewServeInjector()
		}
	}
	s.acfg = acfg
	s.solveSem = make(chan struct{}, cfg.MaxSolves)

	if m := cfg.Metrics; m != nil {
		s.mQueries = m.Counter("aliasd_queries_total", "alias queries served")
		s.mWarm = m.Counter("aliasd_queries_warm_total", "queries that bypassed admission (all clusters solved)")
		s.mCold = m.Counter("aliasd_queries_cold_total", "queries that needed at least one cluster solve")
		s.mDegraded = m.Counter("aliasd_degraded_total", "queries answered at fallback precision")
		s.mShed = m.Counter("aliasd_shed_total", "cold queries rejected with 429 (queue full)")
		s.mReloads = m.Counter("aliasd_reloads_total", "successful snapshot swaps")
		s.mReloadFail = m.Counter("aliasd_reload_failures_total", "rejected reloads (old snapshot kept serving)")
		s.mPanics = m.Counter("aliasd_handler_panics_total", "handler panics recovered into 500s")
		s.mEdits = m.Counter("aliasd_edits_total", "edit batches applied")
		s.mEditFail = m.Counter("aliasd_edit_failures_total", "rejected edit batches (snapshot unchanged)")
		s.mEditFellTo = m.Counter("aliasd_edit_fallbacks_total", "edit batches that fell back to full reanalysis")
		s.mCoalesced = m.Counter("aliasd_edits_coalesced_total", "edit batches processed by another batch's leader")
		s.mInvalidated = m.Counter("aliasd_invalidations_total", "invalidation events pushed to subscribers")
		s.hQuery = m.Histogram("aliasd_query_seconds", "query latency, all queries", obs.SecondsBuckets)
		s.hCold = m.Histogram("aliasd_cold_query_seconds", "query latency, cold queries", obs.SecondsBuckets)
		s.hEdit = m.Histogram("aliasd_edit_seconds", "edit batch latency (resolve + incremental re-solve)", obs.SecondsBuckets)
		m.GaugeFunc("aliasd_subscribers", "live /subscribe connections",
			func() float64 {
				s.subMu.Lock()
				defer s.subMu.Unlock()
				return float64(len(s.subs))
			})
		m.GaugeFunc("aliasd_queue_waiting", "cold queries waiting for admission",
			func() float64 { return float64(s.waiting.Load()) })
		m.GaugeFunc("aliasd_snapshot", "serving snapshot id (0 = none)",
			func() float64 {
				if sn := s.snap.Load(); sn != nil {
					return float64(sn.ID)
				}
				return 0
			})
		m.GaugeFunc("aliasd_ready", "1 when serving and not draining",
			func() float64 {
				if s.Ready() {
					return 1
				}
				return 0
			})
	}
	for i := 0; i < queryLanes; i++ {
		cfg.Tracer.NameThread(obs.QueryTID(i), "query-lane")
	}
	return s
}

// Snapshot returns the serving snapshot (nil before the first Load).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Ready reports whether the server would pass /readyz: it has a
// snapshot and is not draining.
func (s *Server) Ready() bool { return s.snap.Load() != nil && !s.draining.Load() }

// BeginDrain flips the server into draining: /readyz turns 503 (so load
// balancers stop routing here) and new queries are refused while
// in-flight ones finish. The HTTP listener's own Shutdown completes the
// drain; BeginDrain is idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// admission verdicts for one cold query.
type admitVerdict uint8

const (
	admitOK      admitVerdict = iota // got a solve slot; caller must release()
	admitShed                        // queue full: shed with 429
	admitExpired                     // deadline hit while queued: degrade, don't solve
)

// admitCold runs the bounded admission queue for one cold query. With a
// free solve slot it admits immediately. Otherwise the query waits —
// but only if fewer than QueueDepth queries are already waiting (else
// shed) and only until ctx expires (then the query proceeds without a
// slot and answers degraded; EnsureCluster under an expired context
// returns the fallback without starting work).
func (s *Server) admitCold(done <-chan struct{}) (release func(), v admitVerdict) {
	select {
	case s.solveSem <- struct{}{}:
		return func() { <-s.solveSem }, admitOK
	default:
	}
	if int(s.waiting.Load()) >= s.cfg.QueueDepth {
		return nil, admitShed
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	select {
	case s.solveSem <- struct{}{}:
		return func() { <-s.solveSem }, admitOK
	case <-done:
		return nil, admitExpired
	}
}

// retryAfter estimates how long a shed client should back off: the
// queue's expected drain time from recent cold-latency EWMA, clamped to
// [1s, 30s].
func (s *Server) retryAfter() time.Duration {
	ewma := time.Duration(s.coldEWMA.Load()) * time.Microsecond
	if ewma <= 0 {
		ewma = s.cfg.QueryTimeout
	}
	waves := (s.waiting.Load() + int64(s.cfg.QueueDepth)) / int64(s.cfg.MaxSolves)
	d := ewma * time.Duration(waves+1)
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// observeCold folds one cold-query latency into the EWMA (alpha 0.2).
func (s *Server) observeCold(elapsed time.Duration) {
	us := elapsed.Microseconds()
	old := s.coldEWMA.Load()
	if old == 0 {
		s.coldEWMA.Store(us)
		return
	}
	s.coldEWMA.Store(old + (us-old)/5)
}

// Chaos arms (or disarms) fault injection from a ChaosRequest. It is
// the programmatic face of POST /chaos; tests call it directly.
func (s *Server) Chaos(req ChaosRequest) {
	if s.plan != nil {
		var f faults.Fault
		switch req.SolveFaultKind {
		case "panic":
			f.Kind = faults.Panic
		case "slow":
			f.Kind = faults.Slow
			f.Delay = time.Duration(req.SolveSlowMS) * time.Millisecond
		case "budget":
			f.Kind = faults.Budget
		}
		f.Attempts = req.FaultAttempts
		if req.SolveFaultEvery > 0 && f.Kind != faults.None {
			s.plan.EveryNth(req.SolveFaultEvery, f)
		} else {
			s.plan.EveryNth(0, faults.Fault{})
		}
	}
	s.inj.SetLatency(req.LatencyEvery, time.Duration(req.LatencyMS)*time.Millisecond)
	s.inj.SetReloadPause(time.Duration(req.ReloadPauseMS) * time.Millisecond)
}

// ChaosArmed reports whether any injection is currently armed.
func (s *Server) ChaosArmed() bool {
	return s.plan.Active() || s.inj.ReloadPause() > 0 || s.inj.LatencyArmed()
}

var _ http.Handler = (*Server)(nil) // ServeHTTP delegates to Handler(); see handlers.go
