package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bootstrap/internal/ir"
)

// findNode returns the Loc of the first node matching op with the given
// destination variable name — how tests address statements the way a
// tooling client (which holds the lowered program) would.
func findNode(t *testing.T, s *Server, op ir.Op, dst string) ir.Loc {
	t.Helper()
	prog := s.Snapshot().Prog
	want, ok := prog.VarByName[dst]
	if !ok {
		t.Fatalf("no variable %q", dst)
	}
	for _, n := range prog.Nodes {
		if n.Stmt.Op == op && n.Stmt.Dst == want && n.CallLoc == ir.NoLoc {
			return n.Loc
		}
	}
	t.Fatalf("no %v node with dst %q", op, dst)
	return ir.NoLoc
}

func postEdit(t *testing.T, s *Server, body string) (EditResponse, int) {
	t.Helper()
	var resp EditResponse
	code := do(t, s, "POST", "/edit", body, &resp)
	return resp, code
}

// TestEditChangesAnswers: a single-statement edit swaps the snapshot and
// observably changes query answers, without a full reload.
func TestEditChangesAnswers(t *testing.T) {
	s := newTestServer(t, altProgram, nil)
	if r := mayAlias(t, s, "x", "p"); *r.MayAlias {
		t.Fatal("x,p must not alias before the edit")
	}
	before := s.Snapshot().ID

	// p = &c  -->  p = &a : now p aliases x and y.
	loc := findNode(t, s, ir.OpAddr, "p")
	resp, code := postEdit(t, s, fmt.Sprintf(
		`{"edits":[{"action":"replace","loc":%d,"op":"addr","dst":"p","src":"a"}]}`, loc))
	if code != http.StatusOK {
		t.Fatalf("edit status %d", code)
	}
	if resp.Snapshot != before+1 {
		t.Fatalf("snapshot %d, want %d", resp.Snapshot, before+1)
	}
	if resp.FellBack {
		t.Fatalf("single-statement edit fell back: %s", resp.Reason)
	}
	if resp.Applied != 1 || resp.Dirty == 0 {
		t.Fatalf("unexpected report %+v", resp)
	}
	if r := mayAlias(t, s, "x", "p"); !*r.MayAlias {
		t.Fatal("x,p must alias after the edit")
	}
	if r := mayAlias(t, s, "x", "p"); r.Snapshot != before+1 {
		t.Fatalf("queries still answering from snapshot %d", r.Snapshot)
	}
}

// TestEditRejected: malformed and unmappable batches reject without
// touching the serving snapshot.
func TestEditRejected(t *testing.T) {
	s := newTestServer(t, altProgram, nil)
	before := s.Snapshot().ID

	if _, code := postEdit(t, s, `{"edits":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if _, code := postEdit(t, s, `{"edits":[{"action":"warp","loc":1}]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown action: status %d", code)
	}
	if _, code := postEdit(t, s,
		`{"edits":[{"action":"replace","loc":1,"op":"copy","dst":"nosuch","src":"x"}]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown var: status %d", code)
	}
	if _, code := postEdit(t, s,
		`{"edits":[{"action":"delete","loc":999999}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range loc: status %d", code)
	}
	if got := s.Snapshot().ID; got != before {
		t.Fatalf("rejected edits advanced the snapshot to %d", got)
	}
	mayAlias(t, s, "x", "y") // still serving
}

// TestEditStructuralFallback: deleting a call cannot be mapped onto the
// cluster cover; the edit still lands via the full warm reanalysis and
// the response says so.
func TestEditStructuralFallback(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	prog := s.Snapshot().Prog
	var callLoc ir.Loc = ir.NoLoc
	swapFn := prog.FuncByName["swap"]
	for _, n := range prog.Nodes {
		if n.Stmt.Op == ir.OpCall && n.Stmt.Callee == swapFn {
			callLoc = n.Loc
		}
	}
	if callLoc == ir.NoLoc {
		t.Fatal("no call to swap")
	}
	resp, code := postEdit(t, s, fmt.Sprintf(
		`{"edits":[{"action":"delete","loc":%d}]}`, callLoc))
	if code != http.StatusOK {
		t.Fatalf("edit status %d", code)
	}
	if !resp.FellBack || resp.Reason == "" {
		t.Fatalf("deleting a call must fall back, got %+v", resp)
	}
	// Without swap (and with *px = p), x may still alias p but the
	// snapshot must serve the edited program.
	if got := s.Snapshot().ID; got != resp.Snapshot {
		t.Fatalf("serving snapshot %d, response says %d", got, resp.Snapshot)
	}
	mayAlias(t, s, "x", "y")
}

// TestEditAddVarAndInsert: addvar + insert compose in one batch.
func TestEditAddVarAndInsert(t *testing.T) {
	s := newTestServer(t, altProgram, nil)
	loc := findNode(t, s, ir.OpAddr, "p")
	resp, code := postEdit(t, s, fmt.Sprintf(
		`{"edits":[{"action":"addvar","name":"fresh","kind":"global"},`+
			`{"action":"insert","loc":%d,"op":"nullify","dst":"p"}]}`, loc))
	if code != http.StatusOK {
		t.Fatalf("edit status %d", code)
	}
	if resp.Applied != 2 {
		t.Fatalf("applied %d, want 2", resp.Applied)
	}
	if _, ok := s.Snapshot().Prog.VarByName["fresh"]; !ok {
		t.Fatal("variable not added")
	}
}

// TestEditCoalescing: batches submitted while an edit is being applied
// are drained by one leader and share a single published snapshot.
func TestEditCoalescing(t *testing.T) {
	s := newTestServer(t, altProgram, nil)
	before := s.Snapshot().ID
	locP := findNode(t, s, ir.OpAddr, "p")
	locY := findNode(t, s, ir.OpAddr, "y")

	// Hold the reload lock so every concurrent request queues behind it;
	// on release, exactly one leader drains the whole queue.
	s.reloadMu.Lock()
	var wg sync.WaitGroup
	resps := make([]EditResponse, 3)
	codes := make([]int, 3)
	bodies := []string{
		fmt.Sprintf(`{"edits":[{"action":"replace","loc":%d,"op":"addr","dst":"p","src":"a"}]}`, locP),
		fmt.Sprintf(`{"edits":[{"action":"replace","loc":%d,"op":"addr","dst":"y","src":"c"}]}`, locY),
		fmt.Sprintf(`{"edits":[{"action":"delete","loc":%d}]}`, locY),
	}
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resps[i], codes[i] = postEdit(t, s, body)
		}(i, body)
	}
	// Wait until all three batches are queued, then release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.editMu.Lock()
		n := len(s.editQ)
		s.editMu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			s.reloadMu.Unlock()
			t.Fatal("batches never queued")
		}
		time.Sleep(time.Millisecond)
	}
	s.reloadMu.Unlock()
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("edit %d: status %d", i, code)
		}
		if !resps[i].Coalesced {
			t.Fatalf("edit %d not marked coalesced: %+v", i, resps[i])
		}
		if resps[i].Snapshot != before+1 {
			t.Fatalf("edit %d published snapshot %d, want one shared snapshot %d",
				i, resps[i].Snapshot, before+1)
		}
	}
	// Queue order between goroutines is nondeterministic, so only the
	// uncontended locP edit has a determined final state; the contended
	// locY is whatever its last-arriving batch wrote.
	prog := s.Snapshot().Prog
	if st := prog.Node(locP).Stmt; st.Op != ir.OpAddr || st.Src != prog.VarByName["a"] {
		t.Fatalf("locP not rewritten: %+v", st)
	}
	if got := prog.Node(locY).Stmt.Op; got != ir.OpSkip && got != ir.OpAddr {
		t.Fatalf("locY op %v after coalesced edits", got)
	}
}

// sseClient collects events from GET /subscribe on a live listener.
type sseClient struct {
	mu     sync.Mutex
	events []StreamEvent
	cancel context.CancelFunc
	done   chan struct{}
}

func subscribe(t *testing.T, url string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", url+"/subscribe", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("subscribe: %v", err)
	}
	c := &sseClient{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev StreamEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				continue
			}
			c.mu.Lock()
			c.events = append(c.events, ev)
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *sseClient) wait(t *testing.T, want func([]StreamEvent) bool) []StreamEvent {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		evs := append([]StreamEvent(nil), c.events...)
		c.mu.Unlock()
		if want(evs) {
			return evs
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("timed out waiting for events; got %+v", c.events)
	return nil
}

func (c *sseClient) close() {
	c.cancel()
	<-c.done
}

// TestSubscribeStream: subscribers receive the anchor snapshot event, a
// snapshot+cluster event per edit, and an invalidation for a previously
// answered query whose cluster the edit dirtied.
func TestSubscribeStream(t *testing.T) {
	s := newTestServer(t, altProgram, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cl := subscribe(t, ts.URL)
	defer cl.close()
	cl.wait(t, func(evs []StreamEvent) bool {
		return len(evs) > 0 && evs[0].Type == "snapshot"
	})

	// Answer a query so the ring has something to invalidate, then edit
	// the statement that defines its points-to set.
	r, err := http.Post(ts.URL+"/v1/mayalias", "application/json",
		strings.NewReader(`{"p":"x","q":"p"}`))
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("query: %v status %v", err, r.StatusCode)
	}
	r.Body.Close()

	loc := findNode(t, s, ir.OpAddr, "p")
	body := fmt.Sprintf(`{"edits":[{"action":"replace","loc":%d,"op":"addr","dst":"p","src":"a"}]}`, loc)
	r, err = http.Post(ts.URL+"/edit", "application/json", strings.NewReader(body))
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("edit: %v status %v", err, r.StatusCode)
	}
	r.Body.Close()

	evs := cl.wait(t, func(evs []StreamEvent) bool {
		var snap, inval bool
		for _, ev := range evs {
			if ev.Type == "snapshot" && ev.Snapshot == 2 && !ev.Reloaded {
				snap = true
			}
			if ev.Type == "invalidate" && ev.P == "x" && ev.Q == "p" {
				inval = true
			}
		}
		return snap && inval
	})
	// Cluster events accompany the dirty set.
	var clusters int
	for _, ev := range evs {
		if ev.Type == "cluster" && ev.Snapshot == 2 {
			clusters++
			if ev.Status != "resolved" && ev.Status != "pending" {
				t.Fatalf("bad cluster status %q", ev.Status)
			}
		}
	}
	if clusters == 0 {
		t.Fatalf("no cluster events: %+v", evs)
	}
}

// TestSubscribeReloadInvalidatesAll: a full /reload announces itself and
// invalidates every remembered query.
func TestSubscribeReloadInvalidatesAll(t *testing.T) {
	s := newTestServer(t, altProgram, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cl := subscribe(t, ts.URL)
	defer cl.close()

	r, err := http.Post(ts.URL+"/v1/mayalias", "application/json",
		strings.NewReader(`{"p":"x","q":"y"}`))
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("query: %v", err)
	}
	r.Body.Close()

	body, _ := json.Marshal(ReloadRequest{Source: testProgram})
	r, err = http.Post(ts.URL+"/reload", "application/json", strings.NewReader(string(body)))
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("reload: %v", err)
	}
	r.Body.Close()

	cl.wait(t, func(evs []StreamEvent) bool {
		var reloaded, inval bool
		for _, ev := range evs {
			if ev.Type == "snapshot" && ev.Reloaded {
				reloaded = true
			}
			if ev.Type == "invalidate" && ev.P == "x" {
				inval = true
			}
		}
		return reloaded && inval
	})
}
