package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/obs"
)

// testProgram mirrors the core package's canonical sample: x/y/p all
// may-alias at main's exit (via swap and *px = p), locks l1/l2 alias.
const testProgram = `
	int a, b, c;
	int *x, *y, *p;
	int **px;
	lock m1, m2;
	lock *l1, *l2;
	void swap() {
		int *t;
		t = x;
		x = y;
		y = t;
	}
	void locks() {
		l1 = &m1;
		l2 = l1;
	}
	void main() {
		x = &a;
		y = &b;
		p = &c;
		px = &x;
		swap();
		*px = p;
		locks();
	}
`

// altProgram aliases differently: x and y point to the same object, p is
// isolated — so reloads from testProgram observably change answers.
const altProgram = `
	int a, c;
	int *x, *y, *p;
	void main() {
		x = &a;
		y = &a;
		p = &c;
	}
`

func testConfig() Config {
	return Config{
		Analysis: core.Config{
			Mode:              core.ModeAndersen,
			Workers:           2,
			AndersenThreshold: 2,
		},
		QueryTimeout: 2 * time.Second,
	}
}

func newTestServer(t *testing.T, src string, mut func(*Config)) *Server {
	t.Helper()
	cfg := testConfig()
	if mut != nil {
		mut(&cfg)
	}
	s := New(cfg)
	if src != "" {
		if _, err := s.Load(context.Background(), "test", src); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
	return s
}

// do sends one JSON request through the full handler chain and decodes
// the response into out (when non-nil), returning the status code.
func do(t *testing.T, s *Server, method, path string, body string, out any) int {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

func mayAlias(t *testing.T, s *Server, p, q string) QueryResponse {
	t.Helper()
	var resp QueryResponse
	code := do(t, s, "POST", "/v1/mayalias", `{"p":"`+p+`","q":"`+q+`"}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("mayalias(%s,%s): status %d", p, q, code)
	}
	if resp.MayAlias == nil {
		t.Fatalf("mayalias(%s,%s): no may_alias in response", p, q)
	}
	return resp
}

func TestQueryAgainstEagerBaseline(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	eager, err := core.AnalyzeSource(testProgram, core.Config{
		Mode: core.ModeAndersen, Workers: 1, AndersenThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	exit := eager.Prog.Func(eager.Prog.Entry).Exit
	pairs := [][2]string{
		{"x", "y"}, {"x", "p"}, {"y", "p"}, {"l1", "l2"}, {"x", "l1"}, {"a", "b"},
	}
	for _, pair := range pairs {
		resp := mayAlias(t, s, pair[0], pair[1])
		want := eager.MayAlias(eager.Prog.VarByName[pair[0]], eager.Prog.VarByName[pair[1]], exit)
		if *resp.MayAlias != want {
			t.Errorf("mayalias(%s,%s) = %v, eager = %v", pair[0], pair[1], *resp.MayAlias, want)
		}
		if resp.Degraded {
			t.Errorf("mayalias(%s,%s) degraded without chaos", pair[0], pair[1])
		}
		if resp.Snapshot != 1 {
			t.Errorf("snapshot = %d, want 1", resp.Snapshot)
		}
	}
}

func TestWarmBypassAfterFirstTouch(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	first := mayAlias(t, s, "x", "y")
	second := mayAlias(t, s, "x", "y")
	if first.Warm {
		t.Errorf("first query reported warm")
	}
	if !second.Warm {
		t.Errorf("second query not warm")
	}
	if *first.MayAlias != *second.MayAlias {
		t.Errorf("warm answer %v != cold answer %v", *second.MayAlias, *first.MayAlias)
	}
}

// TestStructuralQueriesAreWarm: a pair MayAliasContext answers without
// touching any engine (partition-disjoint, or identical) must be warm
// from the very first query — on a saturated server it would otherwise
// be shed despite costing microseconds.
func TestStructuralQueriesAreWarm(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	// x (int*) and l1 (lock*) live in disjoint Steensgaard partitions.
	resp := mayAlias(t, s, "x", "l1")
	if *resp.MayAlias {
		t.Errorf("mayalias(x,l1) = true across disjoint partitions")
	}
	if !resp.Warm {
		t.Errorf("partition-disjoint query not warm on first touch")
	}
	if resp := mayAlias(t, s, "x", "x"); !resp.Warm || !*resp.MayAlias {
		t.Errorf("identity query: warm=%v may_alias=%v, want true/true", resp.Warm, *resp.MayAlias)
	}
	// The structural queries must not have solved anything.
	if solved, _ := s.Snapshot().A.SolveStats(); solved != 0 {
		t.Errorf("structural queries solved %d clusters", solved)
	}
}

func TestPointsToEndpoint(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	var resp QueryResponse
	if code := do(t, s, "POST", "/v1/pointsto", `{"p":"x"}`, &resp); code != http.StatusOK {
		t.Fatalf("pointsto: status %d", code)
	}
	got := map[string]bool{}
	for _, o := range resp.PointsTo {
		got[o] = true
	}
	// At main's exit x holds &c (via *px = p after the swap); the other
	// targets may appear depending on precision, but a and b must be
	// possible only flow-insensitively and c must be present.
	if !got["c"] {
		t.Errorf("pointsto(x) = %v, want c present", resp.PointsTo)
	}
	if resp.Precise == nil {
		t.Fatalf("pointsto: no precise field")
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	m := obs.NewMetrics()
	s := newTestServer(t, testProgram, func(c *Config) { c.Metrics = m })
	const n = 50
	var wg sync.WaitGroup
	answers := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := httptest.NewRequest("POST", "/v1/mayalias", strings.NewReader(`{"p":"x","q":"y"}`))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				t.Errorf("query %d: status %d", i, w.Code)
				return
			}
			var resp QueryResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.MayAlias == nil {
				t.Errorf("query %d: bad body %q", i, w.Body.String())
				return
			}
			answers[i] = *resp.MayAlias
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if answers[i] != answers[0] {
			t.Fatalf("answer %d = %v, answer 0 = %v", i, answers[i], answers[0])
		}
	}
	// All 50 queries touch the same clusters: single flight means each
	// cluster solved at most once.
	clusters := len(s.Snapshot().A.ClustersOf(s.Snapshot().Prog.VarByName["x"]))
	solved := m.Counter("bootstrap_clusters_solved_total", "").Value()
	cached := m.Counter("bootstrap_clusters_cached_total", "").Value()
	if int(solved+cached) > clusters {
		t.Errorf("%d solves + %d cache imports for %d clusters: single flight broken", solved, cached, clusters)
	}
}

func TestDeadlineDegradesNotFails(t *testing.T) {
	s := newTestServer(t, testProgram, func(c *Config) {
		c.AllowChaos = true
		c.QueryTimeout = 100 * time.Millisecond
	})
	// Every query suffers a 10s latency spike; the 100ms deadline must
	// cut it short and the answer must still come back, degraded.
	if code := do(t, s, "POST", "/chaos", `{"latency_every":1,"latency_ms":10000,"solve_fault_every":1,"solve_fault_kind":"slow","solve_slow_ms":50}`, nil); code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}
	start := time.Now()
	resp := mayAlias(t, s, "x", "y")
	elapsed := time.Since(start)
	if !resp.Degraded {
		t.Errorf("expected degraded answer under chaos, got precise")
	}
	if *resp.MayAlias != true {
		t.Errorf("degraded answer must stay sound: mayalias(x,y) = false")
	}
	if elapsed > time.Second {
		t.Errorf("query took %v, deadline was 100ms: hang past deadline", elapsed)
	}
}

func TestLoadSheddingWhenSaturated(t *testing.T) {
	s := newTestServer(t, testProgram, func(c *Config) {
		c.AllowChaos = true
		c.MaxSolves = 1
		c.QueueDepth = -1 // no queue: shed whenever the one slot is busy
		c.QueryTimeout = 500 * time.Millisecond
	})
	// Hold the only solve slot: the first cold query sleeps on an
	// injected latency spike until its deadline.
	if code := do(t, s, "POST", "/chaos", `{"latency_every":1,"latency_ms":10000}`, nil); code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}
	release := make(chan struct{})
	go func() {
		defer close(release)
		r := httptest.NewRequest("POST", "/v1/mayalias", strings.NewReader(`{"p":"x","q":"y"}`))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Errorf("holder query: status %d", w.Code)
		}
	}()
	// Wait until the holder owns the slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.solveSem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never acquired the solve slot")
		}
		time.Sleep(time.Millisecond)
	}
	r := httptest.NewRequest("POST", "/v1/mayalias", strings.NewReader(`{"p":"p","q":"y"}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated cold query: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.RetryAfterMS <= 0 {
		t.Errorf("429 body %q lacks retry_after_ms", w.Body.String())
	}
	<-release
}

func TestWarmQueriesBypassSaturation(t *testing.T) {
	s := newTestServer(t, testProgram, func(c *Config) {
		c.AllowChaos = true
		c.MaxSolves = 1
		c.QueueDepth = -1
		c.QueryTimeout = 500 * time.Millisecond
	})
	mayAlias(t, s, "x", "y") // warm x's clusters
	// Saturate the slot with a long cold query on another variable.
	if code := do(t, s, "POST", "/chaos", `{"latency_every":1,"latency_ms":10000}`, nil); code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := httptest.NewRequest("POST", "/v1/lockset", strings.NewReader(`{}`))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r) // lockset pre-solve occupies the slot
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.solveSem) == 0 {
		if time.Now().After(deadline) {
			break // lockset may have finished already; warm query must still pass
		}
		time.Sleep(time.Millisecond)
	}
	// Disarm the latency spike so the warm query is fast again; the
	// solve slot may still be held by the lockset pre-solve.
	if code := do(t, s, "POST", "/chaos", `{}`, nil); code != http.StatusOK {
		t.Fatalf("chaos disarm: status %d", code)
	}
	resp := mayAlias(t, s, "x", "y")
	if !resp.Warm {
		t.Errorf("expected warm bypass")
	}
	<-done
}

func TestReloadSwapsSnapshots(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	before := mayAlias(t, s, "x", "p")
	if *before.MayAlias != true || before.Snapshot != 1 {
		t.Fatalf("baseline: mayalias(x,p) = %v on snapshot %d", *before.MayAlias, before.Snapshot)
	}
	var rr ReloadResponse
	body, _ := json.Marshal(ReloadRequest{Source: altProgram})
	if code := do(t, s, "POST", "/reload", string(body), &rr); code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}
	if rr.Snapshot != 2 {
		t.Errorf("reload snapshot = %d, want 2", rr.Snapshot)
	}
	after := mayAlias(t, s, "x", "p")
	if *after.MayAlias != false {
		t.Errorf("after reload mayalias(x,p) = true, want false (p isolated in altProgram)")
	}
	if after.Snapshot != 2 {
		t.Errorf("query snapshot = %d, want 2", after.Snapshot)
	}
	xy := mayAlias(t, s, "x", "y")
	if *xy.MayAlias != true {
		t.Errorf("after reload mayalias(x,y) = false, want true")
	}
}

func TestFailedReloadKeepsOldSnapshot(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	before := mayAlias(t, s, "x", "y")
	code := do(t, s, "POST", "/reload", `{"source":"void main() { this is not CPL }"}`, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("broken reload: status %d, want 422", code)
	}
	resp := mayAlias(t, s, "x", "y")
	if resp.Snapshot != 1 {
		t.Errorf("snapshot = %d after failed reload, want 1", resp.Snapshot)
	}
	if *resp.MayAlias != *before.MayAlias {
		t.Errorf("old snapshot answer changed after failed reload: %v -> %v",
			*before.MayAlias, *resp.MayAlias)
	}
}

func TestReadyzAndDrain(t *testing.T) {
	s := newTestServer(t, "", nil) // no program yet
	if code := do(t, s, "GET", "/readyz", "", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before load: %d, want 503", code)
	}
	if code := do(t, s, "GET", "/healthz", "", nil); code != http.StatusOK {
		t.Errorf("healthz: %d, want 200", code)
	}
	if code := do(t, s, "POST", "/v1/mayalias", `{"p":"x","q":"y"}`, nil); code != http.StatusServiceUnavailable {
		t.Errorf("query before load: %d, want 503", code)
	}
	if _, err := s.Load(context.Background(), "test", testProgram); err != nil {
		t.Fatal(err)
	}
	if code := do(t, s, "GET", "/readyz", "", nil); code != http.StatusOK {
		t.Errorf("readyz after load: %d, want 200", code)
	}
	s.BeginDrain()
	if code := do(t, s, "GET", "/readyz", "", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", code)
	}
	if code := do(t, s, "POST", "/v1/mayalias", `{"p":"x","q":"y"}`, nil); code != http.StatusServiceUnavailable {
		t.Errorf("query while draining: %d, want 503", code)
	}
	if code := do(t, s, "GET", "/healthz", "", nil); code != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (liveness != readiness)", code)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	cases := []struct {
		path, body string
	}{
		{"/v1/mayalias", `{"p":"nope","q":"y"}`},
		{"/v1/mayalias", `{"p":"x","q":"nope"}`},
		{"/v1/mayalias", `not json`},
		{"/v1/mayalias", `{"p":"x","q":"y","at":"nofunc"}`},
		{"/v1/pointsto", `{"p":"nope"}`},
	}
	for _, c := range cases {
		if code := do(t, s, "POST", c.path, c.body, nil); code != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", c.path, c.body, code)
		}
	}
	// Chaos is not mounted unless enabled at boot.
	if code := do(t, s, "POST", "/chaos", `{}`, nil); code != http.StatusNotFound {
		t.Errorf("chaos without AllowChaos: status %d, want 404", code)
	}
}

func TestPanicBarrier(t *testing.T) {
	m := obs.NewMetrics()
	s := newTestServer(t, "", func(c *Config) { c.Metrics = m })
	h := s.recoverWrap(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler: status %d, want 500", w.Code)
	}
	if got := s.mPanics.Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
}

func TestLocksetEndpoint(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	var resp LocksetResponse
	// Retry until the once-per-snapshot computation lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := do(t, s, "POST", "/v1/lockset", `{}`, &resp); code != http.StatusOK {
			t.Fatalf("lockset: status %d", code)
		}
		if resp.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lockset never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp.Snapshot != 1 {
		t.Errorf("lockset snapshot = %d, want 1", resp.Snapshot)
	}
}

func TestInfoAndVars(t *testing.T) {
	s := newTestServer(t, testProgram, nil)
	var info InfoResponse
	if code := do(t, s, "GET", "/v1/info", "", &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Snapshot != 1 || info.Vars == 0 || info.Funcs == 0 {
		t.Errorf("info = %+v: missing snapshot state", info)
	}
	var vars VarsResponse
	if code := do(t, s, "GET", "/v1/vars", "", &vars); code != http.StatusOK {
		t.Fatalf("vars: status %d", code)
	}
	if len(vars.Pointers) == 0 {
		t.Errorf("vars: no covered pointers")
	}
	seen := map[string]bool{}
	for _, p := range vars.Pointers {
		seen[p] = true
	}
	for _, want := range []string{"x", "y"} {
		if !seen[want] {
			t.Errorf("vars: %q missing from covered pointers (have %v)", want, vars.Pointers)
		}
	}
	foundGroup := false
	for _, g := range vars.Partitions {
		has := map[string]bool{}
		for _, n := range g {
			has[n] = true
		}
		if has["x"] && has["y"] {
			foundGroup = true
		}
	}
	if !foundGroup {
		t.Errorf("vars: x and y not grouped in any partition: %v", vars.Partitions)
	}
}
