package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
)

// reference is an eager full-precision analysis used as ground truth
// for chaos runs: degraded:false answers must equal it exactly, and
// degraded:true answers must stay sound against it (a degraded "no
// alias" may never contradict a true alias).
type reference struct {
	a    *core.Analysis
	exit ir.Loc
}

func newReference(t *testing.T, src string) *reference {
	t.Helper()
	a, err := core.AnalyzeSource(src, core.Config{
		Mode: core.ModeAndersen, Workers: 2, AndersenThreshold: 2,
	})
	if err != nil {
		t.Fatalf("reference analysis: %v", err)
	}
	return &reference{a: a, exit: a.Prog.Func(a.Prog.Entry).Exit}
}

func (r *reference) mayAlias(t *testing.T, p, q string) bool {
	t.Helper()
	pv, ok := r.a.Prog.VarByName[p]
	if !ok {
		t.Fatalf("reference has no variable %q", p)
	}
	qv, ok := r.a.Prog.VarByName[q]
	if !ok {
		t.Fatalf("reference has no variable %q", q)
	}
	return r.a.MayAlias(pv, qv, r.exit)
}

// checkAnswer holds a chaos response to the contract: precise answers
// match the reference, degraded answers never claim "no alias" where
// the reference proves one.
func checkAnswer(t *testing.T, ref *reference, p, q string, resp QueryResponse) {
	t.Helper()
	if resp.MayAlias == nil {
		t.Errorf("mayalias(%s,%s): 200 without may_alias", p, q)
		return
	}
	want := ref.mayAlias(t, p, q)
	if !resp.Degraded {
		if *resp.MayAlias != want {
			t.Errorf("precise mayalias(%s,%s) = %v, reference = %v", p, q, *resp.MayAlias, want)
		}
		return
	}
	if !*resp.MayAlias && want {
		t.Errorf("degraded mayalias(%s,%s) = false but the pair aliases: unsound fallback", p, q)
	}
}

// TestChaosDegradeNotFail floods an 8-worker server whose solve path
// fires an injected fault on every 5th attempt (20%) while every 5th
// admitted query eats a latency spike longer than its deadline. The
// contract: every query ends in 200 or 429, nothing hangs past its
// deadline, and every 200 is correct-or-degraded against the eager
// reference.
func TestChaosDegradeNotFail(t *testing.T) {
	const queryTimeout = 300 * time.Millisecond
	m := obs.NewMetrics()
	s := newTestServer(t, testProgram, func(c *Config) {
		c.Analysis.Workers = 8
		c.AllowChaos = true
		c.QueryTimeout = queryTimeout
		c.Metrics = m
	})
	ref := newReference(t, testProgram)
	if code := do(t, s, "POST", "/chaos",
		`{"latency_every":5,"latency_ms":2000,"solve_fault_every":5,"solve_fault_kind":"budget"}`,
		nil); code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}

	pairs := [][2]string{
		{"x", "y"}, {"x", "p"}, {"y", "p"}, {"l1", "l2"}, {"x", "l1"},
		{"a", "b"}, {"px", "x"}, {"l1", "x"},
	}
	const clients = 8
	const perClient = 30
	var wg sync.WaitGroup
	var served, degraded, shed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				pair := pairs[(c*perClient+i)%len(pairs)]
				body := fmt.Sprintf(`{"p":%q,"q":%q}`, pair[0], pair[1])
				r := httptest.NewRequest("POST", "/v1/mayalias", strings.NewReader(body))
				w := httptest.NewRecorder()
				start := time.Now()
				s.ServeHTTP(w, r)
				elapsed := time.Since(start)
				// A query may wait for admission up to its deadline and
				// then still produce a degraded answer; it must never run
				// materially past that.
				if elapsed > queryTimeout+2*time.Second {
					t.Errorf("query %d/%d ran %v, deadline %v: hang past deadline", c, i, elapsed, queryTimeout)
				}
				switch w.Code {
				case http.StatusOK:
					served.Add(1)
					var resp QueryResponse
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						t.Errorf("bad 200 body %q: %v", w.Body.String(), err)
						continue
					}
					if resp.Degraded {
						degraded.Add(1)
					}
					checkAnswer(t, ref, pair[0], pair[1], resp)
				case http.StatusTooManyRequests:
					shed.Add(1)
					var er ErrorResponse
					if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.RetryAfterMS <= 0 {
						t.Errorf("429 body %q lacks retry_after_ms", w.Body.String())
					}
				default:
					t.Errorf("mayalias(%s,%s) under chaos: status %d, want 200 or 429",
						pair[0], pair[1], w.Code)
				}
			}
		}(c)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatalf("no query served under chaos: %d shed", shed.Load())
	}
	t.Logf("chaos: %d served (%d degraded), %d shed, %d latency spikes",
		served.Load(), degraded.Load(), shed.Load(), s.inj.Spikes())
	// Disarm and let detached solves land: the server must heal — a
	// fresh query round ends fully precise.
	if code := do(t, s, "POST", "/chaos", `{}`, nil); code != http.StatusOK {
		t.Fatalf("chaos disarm: status %d", code)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		allPrecise := true
		for _, pair := range pairs {
			resp := mayAlias(t, s, pair[0], pair[1])
			checkAnswer(t, ref, pair[0], pair[1], resp)
			if resp.Degraded {
				allPrecise = false
			}
		}
		if allPrecise {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never healed to full precision after chaos disarm")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReloadUnderLoadNeverTorn hammers queries while the program is
// live-reloaded back and forth between two programs with different
// aliasing, with the injector holding the build->swap window open. A
// torn snapshot would pair one program's snapshot id with the other
// program's answer; every response must map, via its snapshot id, to
// the matching reference analysis.
func TestReloadUnderLoadNeverTorn(t *testing.T) {
	s := newTestServer(t, testProgram, func(c *Config) {
		c.AllowChaos = true
		c.QueryTimeout = time.Second
	})
	// Widen the race window between analyzing the new program and
	// publishing it.
	if code := do(t, s, "POST", "/chaos", `{"reload_pause_ms":10}`, nil); code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}
	refOdd := newReference(t, testProgram) // snapshots 1, 3, 5, ...
	refEven := newReference(t, altProgram) // snapshots 2, 4, 6, ...
	// Pairs present in both programs, with answers that differ between
	// them: (x,p) aliases only in testProgram, (x,y) flow-sensitively
	// only in altProgram.
	pairs := [][2]string{{"x", "y"}, {"x", "p"}, {"y", "p"}}
	differs := 0
	for _, pair := range pairs {
		if refOdd.mayAlias(t, pair[0], pair[1]) != refEven.mayAlias(t, pair[0], pair[1]) {
			differs++
		}
	}
	if differs == 0 {
		t.Fatal("the two programs agree on every probe pair; a torn snapshot would be invisible")
	}

	const reloads = 12
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var checked atomic.Int64
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pair := pairs[(c+i)%len(pairs)]
				body := fmt.Sprintf(`{"p":%q,"q":%q}`, pair[0], pair[1])
				r := httptest.NewRequest("POST", "/v1/mayalias", strings.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, r)
				switch w.Code {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					continue
				default:
					t.Errorf("query during reload: status %d", w.Code)
					continue
				}
				var resp QueryResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.MayAlias == nil {
					t.Errorf("bad body %q", w.Body.String())
					continue
				}
				ref := refOdd
				if resp.Snapshot%2 == 0 {
					ref = refEven
				}
				checkAnswer(t, ref, pair[0], pair[1], resp)
				checked.Add(1)
			}
		}(c)
	}
	for i := 0; i < reloads; i++ {
		src := altProgram
		if i%2 == 1 {
			src = testProgram
		}
		body, _ := json.Marshal(ReloadRequest{Source: src})
		var rr ReloadResponse
		if code := do(t, s, "POST", "/reload", string(body), &rr); code != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, code)
		}
		if rr.Snapshot != int64(i+2) {
			t.Fatalf("reload %d produced snapshot %d, want %d", i, rr.Snapshot, i+2)
		}
		time.Sleep(5 * time.Millisecond) // let queries land on the new snapshot
	}
	close(stop)
	wg.Wait()
	if checked.Load() == 0 {
		t.Fatal("no query completed during the reload storm")
	}
	if got := s.Snapshot().ID; got != reloads+1 {
		t.Errorf("final snapshot = %d, want %d", got, reloads+1)
	}
	t.Logf("reload storm: %d answers checked across %d snapshots", checked.Load(), reloads+1)
}
