package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"bootstrap/internal/check"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
)

// Handler returns the daemon's full HTTP surface:
//
//	POST /v1/mayalias   {"p":..,"q":..,"at":..}        may-alias query
//	POST /v1/pointsto   {"p":..,"at":..}               points-to query
//	POST /v1/lockset    {}                             race report (computed once per snapshot)
//	POST /check         {"pass":"lockset"}             run one checker pass (also /v1/check)
//	GET  /v1/info                                      snapshot + server state
//	GET  /v1/vars                                      query population for load drivers
//	POST /reload        {"source":..} | {"variant":n}  snapshot swap
//	POST /edit          {"edits":[..]}                 incremental edit (ApplyEdit + swap)
//	GET  /subscribe                                    SSE stream: snapshot/cluster/invalidate
//	POST /chaos         (only with AllowChaos)         arm/disarm fault injection
//	GET  /healthz                                      process liveness (always 200)
//	GET  /readyz                                       200 iff serving and not draining
//	GET  /metrics, /debug/vars, /debug/pprof/*         (only with Metrics)
//
// Every handler runs behind a panic barrier: a handler bug answers that
// one request with 500 and increments aliasd_handler_panics_total — the
// daemon itself never dies.
func (s *Server) Handler() http.Handler {
	s.handlerOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/mayalias", func(w http.ResponseWriter, r *http.Request) {
			s.handleQuery(w, r, kindMayAlias)
		})
		mux.HandleFunc("POST /v1/pointsto", func(w http.ResponseWriter, r *http.Request) {
			s.handleQuery(w, r, kindPointsTo)
		})
		mux.HandleFunc("POST /v1/lockset", s.handleLockset)
		mux.HandleFunc("POST /v1/check", s.handleCheck)
		mux.HandleFunc("POST /check", s.handleCheck)
		mux.HandleFunc("GET /v1/info", s.handleInfo)
		mux.HandleFunc("GET /v1/vars", s.handleVars)
		mux.HandleFunc("POST /reload", s.handleReload)
		mux.HandleFunc("POST /edit", s.handleEdit)
		mux.HandleFunc("GET /subscribe", s.handleSubscribe)
		if s.cfg.AllowChaos {
			mux.HandleFunc("POST /chaos", s.handleChaos)
		}
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			if !s.Ready() {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
		})
		if m := s.cfg.Metrics; m != nil {
			obsMux := m.ServeMux()
			mux.Handle("/metrics", obsMux)
			mux.Handle("/debug/", obsMux)
		}
		s.handler = s.recoverWrap(mux)
	})
	return s.handler
}

// ServeHTTP makes *Server usable directly with httptest and http.Serve.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.Handler().ServeHTTP(w, r)
}

// recoverWrap is the panic barrier around every handler.
func (s *Server) recoverWrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.mPanics.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					ErrorResponse{Error: fmt.Sprintf("internal: %v", rec)})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

type queryKind uint8

const (
	kindMayAlias queryKind = iota
	kindPointsTo
)

func (k queryKind) String() string {
	if k == kindMayAlias {
		return "mayalias"
	}
	return "pointsto"
}

// decodeBody reads one JSON body into v under the given size limit.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// resolveLoc maps a request's "at" to a query location: the named
// function's exit, defaulting to the entry function's exit (the classic
// whole-program vantage point).
func resolveLoc(prog *ir.Program, at string) (ir.Loc, error) {
	fn := prog.Entry
	if at != "" {
		id, ok := prog.FuncByName[at]
		if !ok {
			return 0, fmt.Errorf("unknown function %q", at)
		}
		fn = id
	}
	return prog.Func(fn).Exit, nil
}

// queryDeadline derives one query's deadline: the server's QueryTimeout,
// lowered (never raised) by the request's timeout_ms.
func (s *Server) queryDeadline(overrideMS int) time.Duration {
	d := s.cfg.QueryTimeout
	if overrideMS > 0 {
		if o := time.Duration(overrideMS) * time.Millisecond; o < d {
			d = o
		}
	}
	return d
}

// handleQuery is the shared body of /v1/mayalias and /v1/pointsto: the
// full robustness path — snapshot pin, warm bypass, bounded admission,
// injected latency, deadline-degraded computation.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, kind queryKind) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return
	}
	sn := s.snap.Load() // pinned: this whole request answers from sn
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "no program loaded"})
		return
	}
	var req QueryRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	p, ok := sn.Prog.VarByName[req.P]
	if !ok {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown variable %q", req.P)})
		return
	}
	var q ir.VarID
	if kind == kindMayAlias {
		if q, ok = sn.Prog.VarByName[req.Q]; !ok {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown variable %q", req.Q)})
			return
		}
	}
	loc, err := resolveLoc(sn.Prog, req.At)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	// Warm means this query cannot trigger a solve — p's clusters are
	// already solved, or the answer is structural (identical pair,
	// partition-disjoint pair, pointer outside every cluster). Warm
	// queries bypass cold admission below.
	var warm bool
	if kind == kindMayAlias {
		warm = !sn.A.MayAliasNeedsSolve(p, q)
	} else {
		warm = !sn.A.PointsToNeedsSolve(p)
	}

	start := time.Now()
	qctx, cancel := context.WithTimeout(r.Context(), s.queryDeadline(req.TimeoutMS))
	defer cancel()

	lane := int(s.lane.Add(1)-1) % queryLanes
	sp := s.cfg.Tracer.Start("query", kind.String(), obs.QueryTID(lane)).
		Arg("p", req.P).Arg("warm", warm).Arg("snapshot", sn.ID)

	if !warm {
		// Cold: the query needs at least one solve. Bounded admission —
		// a free solve slot admits immediately, a full queue sheds, and
		// a deadline that fires while queued degrades (the computation
		// below then answers from the fallback without starting work).
		release, verdict := s.admitCold(qctx.Done())
		switch verdict {
		case admitOK:
			defer release()
		case admitShed:
			s.mShed.Add(1)
			ra := s.retryAfter()
			w.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds()+0.999)))
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Error:        "overloaded: cold-query queue full",
				RetryAfterMS: ra.Milliseconds(),
			})
			sp.Arg("shed", true).End()
			return
		case admitExpired:
			// fall through: qctx is done, the query degrades below.
		}
	}

	// Chaos hook: an injected latency spike sleeps under the query's own
	// deadline, so it degrades the answer instead of hanging the client.
	if d := s.inj.QueryDelay(); d > 0 {
		select {
		case <-time.After(d):
		case <-qctx.Done():
		}
	}

	resp := QueryResponse{Warm: warm, Snapshot: sn.ID}
	switch kind {
	case kindMayAlias:
		aliased, precise := sn.A.MayAliasContext(qctx, p, q, loc)
		resp.MayAlias = &aliased
		resp.Degraded = !precise
	case kindPointsTo:
		objs, precise := sn.A.PointsToContext(qctx, p, loc)
		names := make([]string, len(objs))
		for i, o := range objs {
			names[i] = sn.Prog.VarName(o)
		}
		resp.PointsTo = names
		resp.Precise = &precise
		resp.Degraded = !precise
	}
	elapsed := time.Since(start)
	resp.ElapsedUS = elapsed.Microseconds()

	s.mQueries.Add(1)
	s.hQuery.Observe(elapsed.Seconds())
	if warm {
		s.mWarm.Add(1)
	} else {
		s.mCold.Add(1)
		s.hCold.Observe(elapsed.Seconds())
		s.observeCold(elapsed)
	}
	if resp.Degraded {
		s.mDegraded.Add(1)
	}
	sp.Arg("degraded", resp.Degraded).End()
	// Remember the answered key so /subscribe can push a precise
	// invalidation if a later edit dirties one of its clusters.
	s.recordQuery(sn.ID, kind, req.P, req.Q, req.At)
	writeJSON(w, http.StatusOK, resp)
}

// handleLockset serves the snapshot's race report. The heavy work
// (solving every cluster, then the lockset fixpoint) runs once per
// snapshot; a request whose deadline fires first gets ready=false and a
// retry hint while the computation keeps going.
func (s *Server) handleLockset(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return
	}
	sn := s.snap.Load()
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "no program loaded"})
		return
	}
	var req QueryRequest // only timeout_ms is honored
	if r.ContentLength != 0 {
		if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
	}
	qctx, cancel := context.WithTimeout(r.Context(), s.queryDeadline(req.TimeoutMS))
	defer cancel()
	res, ready := sn.Lockset(qctx, s)
	if !ready {
		writeJSON(w, http.StatusOK, LocksetResponse{
			Ready:        false,
			Snapshot:     sn.ID,
			RetryAfterMS: s.retryAfter().Milliseconds(),
		})
		return
	}
	writeJSON(w, http.StatusOK, LocksetResponse{
		Ready:    true,
		Threads:  res.threads,
		Accesses: res.accesses,
		Races:    res.races,
		Snapshot: sn.ID,
	})
}

// handleCheck runs one named checker pass against the live snapshot —
// the served face of the aliaslint engine. The pass runs once per
// (snapshot, pass) pair with its footprint clusters pre-solved through
// the solve semaphore; every finding is stamped with the snapshot id
// and carries the same fingerprint the batch run would produce.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return
	}
	sn := s.snap.Load()
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "no program loaded"})
		return
	}
	var req CheckRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	pass, ok := check.Lookup(req.Pass)
	if !ok {
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("unknown pass %q", req.Pass)})
		return
	}
	qctx, cancel := context.WithTimeout(r.Context(), s.queryDeadline(req.TimeoutMS))
	defer cancel()
	rep, ready := sn.CheckPass(qctx, s, pass)
	if !ready {
		writeJSON(w, http.StatusOK, CheckResponse{
			Ready:        false,
			Pass:         pass.Name(),
			Snapshot:     sn.ID,
			RetryAfterMS: s.retryAfter().Milliseconds(),
		})
		return
	}
	resp := CheckResponse{Ready: true, Pass: pass.Name(), Snapshot: sn.ID}
	for _, res := range rep.Results {
		resp.Incomplete = resp.Incomplete || res.Incomplete
		for _, d := range res.Diags {
			resp.Findings = append(resp.Findings, CheckFinding{
				Rule:        d.Rule,
				Severity:    d.Severity.String(),
				Loc:         int64(d.Loc),
				Func:        d.Func,
				Message:     d.Message,
				Fingerprint: d.Fingerprint,
				Snapshot:    d.Snapshot,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReload swaps in a new program under live traffic.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return
	}
	var req ReloadRequest
	if err := decodeBody(w, r, 64<<20, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	desc, src := "inline source", req.Source
	if src == "" {
		if s.cfg.Regen == nil {
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: "empty source and no regenerator configured"})
			return
		}
		var err error
		desc, src, err = s.cfg.Regen(req.Variant)
		if err != nil {
			s.mReloadFail.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity,
				ErrorResponse{Error: fmt.Sprintf("regenerate: %v", err)})
			return
		}
	}
	start := time.Now()
	sn, err := s.Reload(r.Context(), desc, src)
	if err != nil {
		// The old snapshot keeps serving; reload is all-or-nothing.
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{
		Snapshot:  sn.ID,
		Desc:      sn.Desc,
		Vars:      sn.Prog.NumVars(),
		Clusters:  len(sn.A.Clusters),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// handleChaos arms or disarms fault injection (mounted only with
// AllowChaos).
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req ChaosRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	s.Chaos(req)
	writeJSON(w, http.StatusOK, ChaosResponse{Armed: s.ChaosArmed()})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := InfoResponse{
		Draining:    s.draining.Load(),
		ChaosArmed:  s.ChaosArmed(),
		QueueDepth:  s.cfg.QueueDepth,
		MaxSolves:   s.cfg.MaxSolves,
		QueryTimeMS: s.cfg.QueryTimeout.Milliseconds(),
	}
	if sn := s.snap.Load(); sn != nil {
		solved, demoted := sn.A.SolveStats()
		info.Snapshot = sn.ID
		info.Desc = sn.Desc
		info.Vars = sn.Prog.NumVars()
		info.Funcs = len(sn.Prog.Funcs)
		info.Clusters = len(sn.A.Clusters)
		info.Solved = solved
		info.Demoted = demoted
	}
	writeJSON(w, http.StatusOK, info)
}

// varsPartitionCap bounds the partition groups /v1/vars returns; they
// are a sampling aid for load drivers, not a dump.
const (
	varsPartitionCap = 256
	varsGroupCap     = 32
)

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "no program loaded"})
		return
	}
	covered := sn.A.CoveredPointers()
	resp := VarsResponse{Snapshot: sn.ID}
	for _, f := range sn.Prog.Funcs {
		resp.Funcs = append(resp.Funcs, f.Name)
	}
	resp.Pointers = make([]string, len(covered))
	for i, p := range covered {
		resp.Pointers[i] = sn.Prog.VarName(p)
	}
	// Group covered pointers by Steensgaard partition: only same-group
	// pairs can alias, so a load driver mixes both populations. Keyed by
	// the partition's first member, which is stable per snapshot.
	groups := map[ir.VarID][]string{}
	for _, p := range covered {
		part := sn.A.Steens.PartitionOf(p)
		if len(part) == 0 {
			continue
		}
		key := part[0]
		if len(groups[key]) < varsGroupCap {
			groups[key] = append(groups[key], sn.Prog.VarName(p))
		}
	}
	keys := make([]ir.VarID, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if len(groups[k]) < 2 {
			continue
		}
		resp.Partitions = append(resp.Partitions, groups[k])
		if len(resp.Partitions) >= varsPartitionCap {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
