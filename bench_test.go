// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// family per table/figure:
//
//   - BenchmarkTable1NoClustering / BenchmarkTable1Steensgaard /
//     BenchmarkTable1Andersen — the three FSCS configurations of Table 1,
//     per benchmark row (scaled-down workloads; run cmd/benchtab for the
//     full table with the machine simulation);
//   - BenchmarkFigure1 — the cluster-size histogram computation;
//   - BenchmarkAblationThreshold — the Andersen-threshold sweep;
//   - BenchmarkSteensgaard / BenchmarkAndersen / BenchmarkAlgorithm1 —
//     stage micro-benchmarks.
package bootstrap_test

import (
	"fmt"
	"runtime"
	"testing"

	"bootstrap/internal/andersen"
	"bootstrap/internal/bench"
	"bootstrap/internal/bench/legacyfscs"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

const benchScale = 0.12

// benchRows is a representative slice of Table 1: tiny, driver-sized,
// low-overlap (Andersen clustering wins) and high-overlap (it does not).
var benchRows = []string{"sock", "ctrace", "autofs", "raid", "mt_daapd"}

type prepared struct {
	prog *ir.Program
	sa   *steens.Analysis
	cg   *callgraph.Graph
}

func prepare(b *testing.B, name string, scale float64) prepared {
	b.Helper()
	row, ok := synth.FindBenchmark(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	prog, err := frontend.LowerSource(synth.Generate(row, scale))
	if err != nil {
		b.Fatal(err)
	}
	return prepared{prog: prog, sa: steens.Analyze(prog), cg: callgraph.Build(prog)}
}

func runCover(b *testing.B, p prepared, cs []*cluster.Cluster, budget int64) {
	b.Helper()
	for _, c := range cs {
		eng := fscs.NewEngine(p.prog, p.cg, p.sa, c, fscs.WithBudget(budget))
		_ = eng.Run()
	}
}

// BenchmarkTable1NoClustering measures column 6: the monolithic FSCS run
// (budget-capped, as the paper caps at 15 minutes).
func BenchmarkTable1NoClustering(b *testing.B) {
	for _, name := range benchRows {
		b.Run(name, func(b *testing.B) {
			p := prepare(b, name, benchScale)
			whole := []*cluster.Cluster{cluster.BuildWhole(p.prog, p.sa)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCover(b, p, whole, 300_000)
			}
		})
	}
}

// BenchmarkTable1Steensgaard measures columns 7-9: FSCS on Steensgaard
// partitions.
func BenchmarkTable1Steensgaard(b *testing.B) {
	for _, name := range benchRows {
		b.Run(name, func(b *testing.B) {
			p := prepare(b, name, benchScale)
			cover := cluster.BuildSteensgaard(p.prog, p.sa)
			stats := cluster.CoverStats(cover)
			b.ReportMetric(float64(stats.NumClusters), "clusters")
			b.ReportMetric(float64(stats.MaxSize), "maxsize")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCover(b, p, cover, 0)
			}
		})
	}
}

// BenchmarkTable1Andersen measures columns 10-12: FSCS on bootstrapped
// Andersen clusters.
func BenchmarkTable1Andersen(b *testing.B) {
	for _, name := range benchRows {
		b.Run(name, func(b *testing.B) {
			p := prepare(b, name, benchScale)
			cover := cluster.BuildAndersen(p.prog, p.sa, 8)
			stats := cluster.CoverStats(cover)
			b.ReportMetric(float64(stats.NumClusters), "clusters")
			b.ReportMetric(float64(stats.MaxSize), "maxsize")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCover(b, p, cover, 0)
			}
		})
	}
}

// BenchmarkFigure1 measures the cluster-size histogram computation for the
// paper's autofs figure.
func BenchmarkFigure1(b *testing.B) {
	row, _ := synth.FindBenchmark("autofs")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Figure1(row, bench.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThreshold sweeps the Andersen threshold (the paper
// fixes 60 empirically; Section 2's "Andersen Threshold" discussion).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []int{4, 8, 16, 1 << 30} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			p := prepare(b, "raid", 0.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cover := cluster.BuildAndersen(p.prog, p.sa, th)
				runCover(b, p, cover, 0)
			}
		})
	}
}

// BenchmarkSteensgaard measures the base partitioning stage alone.
func BenchmarkSteensgaard(b *testing.B) {
	for _, name := range []string{"sock", "autofs"} {
		b.Run(name, func(b *testing.B) {
			row, _ := synth.FindBenchmark(name)
			prog, err := frontend.LowerSource(synth.Generate(row, 0.5))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				steens.Analyze(prog)
			}
		})
	}
}

// BenchmarkAndersen measures the inclusion-based stage alone.
func BenchmarkAndersen(b *testing.B) {
	for _, name := range []string{"sock", "autofs"} {
		b.Run(name, func(b *testing.B) {
			row, _ := synth.FindBenchmark(name)
			prog, err := frontend.LowerSource(synth.Generate(row, 0.5))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				andersen.Analyze(prog)
			}
		})
	}
}

// BenchmarkAlgorithm1 measures the relevant-statement slicing over all
// partitions of a driver-shaped workload.
func BenchmarkAlgorithm1(b *testing.B) {
	p := prepare(b, "autofs", 0.5)
	parts := p.sa.Partitions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := cluster.NewIndex(p.prog, p.sa)
		for _, part := range parts {
			ix.RelevantStatements(part)
		}
	}
}

// BenchmarkFrontend measures parse + lowering throughput.
func BenchmarkFrontend(b *testing.B) {
	row, _ := synth.FindBenchmark("autofs")
	src := synth.Generate(row, 0.5)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := frontend.LowerSource(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCycleElimination compares the baseline Andersen solver
// with online cycle elimination on a cycle-heavy workload.
func BenchmarkAblationCycleElimination(b *testing.B) {
	row, _ := synth.FindBenchmark("sendmail")
	prog, err := frontend.LowerSource(synth.Generate(row, 0.1))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			andersen.Analyze(prog)
		}
	})
	b.Run("cycle-elimination", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			andersen.Analyze(prog, andersen.WithCycleElimination())
		}
	})
}

// BenchmarkFSCSCluster compares the interned integer-keyed FSCS engine
// against the frozen pre-interning baseline (string-keyed summary
// tuples, per-round sorted worklist) on the same Andersen covers — the
// per-cluster half of the BENCH_fscs.json trajectory.
func BenchmarkFSCSCluster(b *testing.B) {
	for _, name := range benchRows {
		b.Run(name, func(b *testing.B) {
			p := prepare(b, name, benchScale)
			cover := cluster.BuildAndersen(p.prog, p.sa, 8)
			b.Run("interned", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runCover(b, p, cover, 0)
				}
			})
			b.Run("legacy", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, c := range cover {
						eng := legacyfscs.NewEngine(p.prog, p.cg, p.sa, c)
						_ = eng.Run()
					}
				}
			})
		})
	}
}

// BenchmarkAnalyzeProgram compares the full pipelined driver (clustering
// cascade overlapped with FSCS workers, interned engines) against the
// pre-PR shape (serial cascade, then legacy engines on the same worker
// count) — the whole-program half of BENCH_fscs.json.
func BenchmarkAnalyzeProgram(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, name := range benchRows {
		b.Run(name, func(b *testing.B) {
			row, ok := synth.FindBenchmark(name)
			if !ok {
				b.Fatalf("unknown benchmark %s", name)
			}
			prog, err := frontend.LowerSource(synth.Generate(row, benchScale))
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Config{Mode: core.ModeAndersen, Workers: workers, AndersenThreshold: 8}
			b.Run("pipelined", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.AnalyzeProgram(prog, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("baseline", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bench.LegacyAnalyzeProgram(prog, 8, workers)
				}
			})
		})
	}
}
