package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v", got)
	}
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitList[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// resetFlags restores this command's flags (not the test framework's) to
// their defaults between runs.
func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

func TestRunOnDriver(t *testing.T) {
	const path = "../../testdata/driver.cpl"
	resetFlags()
	if err := run(path); err != nil {
		t.Fatalf("default run: %v", err)
	}
	resetFlags()
	for _, set := range [][2]string{
		{"partitions", "true"},
		{"clusters", "true"},
		{"stats", "true"},
		{"races", "true"},
		{"dump", "true"},
	} {
		resetFlags()
		if err := flag.Set(set[0], set[1]); err != nil {
			t.Fatal(err)
		}
		if err := run(path); err != nil {
			t.Fatalf("-%s run: %v", set[0], err)
		}
	}
	// Queries.
	resetFlags()
	_ = flag.Set("pts", "lp,dev.owner")
	_ = flag.Set("aliases", "lp")
	if err := run(path); err != nil {
		t.Fatalf("query run: %v", err)
	}
	// Query in a named function.
	resetFlags()
	_ = flag.Set("pts", "dev.state")
	_ = flag.Set("at", "thread_open")
	if err := run(path); err != nil {
		t.Fatalf("-at run: %v", err)
	}
	// Errors.
	resetFlags()
	_ = flag.Set("pts", "nosuchvar")
	if err := run(path); err == nil {
		t.Error("unknown variable should error")
	}
	resetFlags()
	_ = flag.Set("at", "nosuchfunc")
	_ = flag.Set("pts", "lp")
	if err := run(path); err == nil {
		t.Error("unknown function should error")
	}
	resetFlags()
	_ = flag.Set("mode", "bogus")
	if err := run(path); err == nil {
		t.Error("bad mode should error")
	}
	resetFlags()
	if err := run("../../testdata/nonexistent.cpl"); err == nil {
		t.Error("missing file should error")
	}
}

// TestRunTrace is the observability acceptance check at the binary
// level: -trace writes valid Chrome trace JSON with one span per cascade
// phase and per cluster attempt, and the outcome args cover cache hits
// (second run against a warm -cache-dir) and demotions (starved budget).
func TestRunTrace(t *testing.T) {
	const path = "../../testdata/driver.cpl"
	dir := t.TempDir()

	collect := func(trace string, extra ...[2]string) (map[string]int, map[string]int) {
		t.Helper()
		resetFlags()
		_ = flag.Set("trace", trace)
		for _, kv := range extra {
			_ = flag.Set(kv[0], kv[1])
		}
		if err := run(path); err != nil {
			t.Fatalf("traced run: %v", err)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &tr); err != nil {
			t.Fatalf("%s is not valid Chrome trace JSON: %v", trace, err)
		}
		names, outcomes := map[string]int{}, map[string]int{}
		for _, ev := range tr.TraceEvents {
			names[ev.Name]++
			if o, ok := ev.Args["outcome"].(string); ok {
				outcomes[o]++
			}
		}
		return names, outcomes
	}

	cacheDir := filepath.Join(dir, "cache")
	names, outcomes := collect(filepath.Join(dir, "cold.json"), [2]string{"cache-dir", cacheDir})
	for _, phase := range []string{"parse", "steensgaard", "clustering", "fallback", "fscs"} {
		if names[phase] != 1 {
			t.Errorf("cold trace: %d %q phase spans, want 1", names[phase], phase)
		}
	}
	if names["attempt"] == 0 {
		t.Error("cold trace: no attempt spans")
	}
	if outcomes["solved"] == 0 {
		t.Errorf("cold trace outcomes = %v, want solved > 0", outcomes)
	}

	_, outcomes = collect(filepath.Join(dir, "warm.json"), [2]string{"cache-dir", cacheDir})
	if outcomes["cached"] == 0 {
		t.Errorf("warm trace outcomes = %v, want cached > 0", outcomes)
	}

	_, outcomes = collect(filepath.Join(dir, "starved.json"),
		[2]string{"budget", "1"}, [2]string{"retries", "-1"})
	if outcomes["demoted"] == 0 {
		t.Errorf("starved trace outcomes = %v, want demoted > 0", outcomes)
	}
}

func TestRunNullDeref(t *testing.T) {
	resetFlags()
	_ = flag.Set("nullderef", "true")
	if err := run("../../testdata/driver.cpl"); err != nil {
		t.Fatalf("-nullderef run: %v", err)
	}
}
