package main

import (
	"flag"
	"strings"
	"testing"

	"bootstrap/internal/core"
)

func TestParseMode(t *testing.T) {
	cases := map[string]core.Mode{
		"none": core.ModeNone, "steensgaard": core.ModeSteensgaard,
		"steens": core.ModeSteensgaard, "andersen": core.ModeAndersen,
		"syntactic": core.ModeSyntactic,
	}
	for s, want := range cases {
		got, err := parseMode(s)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := parseMode("bogus"); err == nil {
		t.Error("parseMode should reject unknown modes")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v", got)
	}
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitList[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// resetFlags restores this command's flags (not the test framework's) to
// their defaults between runs.
func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

func TestRunOnDriver(t *testing.T) {
	const path = "../../testdata/driver.cpl"
	resetFlags()
	if err := run(path); err != nil {
		t.Fatalf("default run: %v", err)
	}
	resetFlags()
	for _, set := range [][2]string{
		{"partitions", "true"},
		{"clusters", "true"},
		{"stats", "true"},
		{"races", "true"},
		{"dump", "true"},
	} {
		resetFlags()
		if err := flag.Set(set[0], set[1]); err != nil {
			t.Fatal(err)
		}
		if err := run(path); err != nil {
			t.Fatalf("-%s run: %v", set[0], err)
		}
	}
	// Queries.
	resetFlags()
	_ = flag.Set("pts", "lp,dev.owner")
	_ = flag.Set("aliases", "lp")
	if err := run(path); err != nil {
		t.Fatalf("query run: %v", err)
	}
	// Query in a named function.
	resetFlags()
	_ = flag.Set("pts", "dev.state")
	_ = flag.Set("at", "thread_open")
	if err := run(path); err != nil {
		t.Fatalf("-at run: %v", err)
	}
	// Errors.
	resetFlags()
	_ = flag.Set("pts", "nosuchvar")
	if err := run(path); err == nil {
		t.Error("unknown variable should error")
	}
	resetFlags()
	_ = flag.Set("at", "nosuchfunc")
	_ = flag.Set("pts", "lp")
	if err := run(path); err == nil {
		t.Error("unknown function should error")
	}
	resetFlags()
	_ = flag.Set("mode", "bogus")
	if err := run(path); err == nil {
		t.Error("bad mode should error")
	}
	resetFlags()
	if err := run("../../testdata/nonexistent.cpl"); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunNullDeref(t *testing.T) {
	resetFlags()
	_ = flag.Set("nullderef", "true")
	if err := run("../../testdata/driver.cpl"); err != nil {
		t.Fatalf("-nullderef run: %v", err)
	}
}
