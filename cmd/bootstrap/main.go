// Command bootstrap analyzes a CPL program with the paper's bootstrapped
// flow- and context-sensitive pointer alias analysis and answers queries.
//
// Usage:
//
//	bootstrap [flags] program.cpl
//
// Examples:
//
//	bootstrap -partitions prog.cpl            # Steensgaard partitions
//	bootstrap -clusters prog.cpl              # the alias cover
//	bootstrap -aliases p,q -at main prog.cpl  # FSCS alias sets
//	bootstrap -pts x -at main prog.cpl        # FSCS points-to set
//	bootstrap -races prog.cpl                 # lockset race detection
//	bootstrap -mode none -stats prog.cpl      # unclustered baseline
//	bootstrap -cache-dir .btscache prog.cpl   # persistent result cache;
//	                                          # re-runs import unchanged clusters
//	bootstrap -shards 4 -stats prog.cpl       # distribute the eager solve
//	                                          # across 4 worker processes
//	bootstrap -trace out.json prog.cpl        # Chrome trace of the cascade
//	bootstrap -metrics-addr :9090 prog.cpl    # /metrics + /debug/pprof server
//
// Fault tolerance: -cluster-timeout bounds each per-cluster engine (the
// paper's 15-minute analogue), -timeout bounds the whole run, and
// -retries sets the degradation ladder's retry count. A cluster that
// exhausts its budget, misses its deadline or panics is retried with
// halved precision knobs and finally demoted to the flow-insensitive
// fallback — queries stay sound and the run never errors out. -stats
// prints the per-cluster health summary.
//
// Observability: -trace writes a Chrome trace (load it in Perfetto or
// chrome://tracing) with one span per cascade phase and per cluster
// attempt, -metrics-addr serves the live metrics registry and pprof, and
// -profile captures a cpu/mem/mutex profile of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bootstrap/internal/bench"
	"bootstrap/internal/cliutil"
	"bootstrap/internal/core"
	"bootstrap/internal/dist"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/lockset"
	"bootstrap/internal/nullcheck"
)

var (
	analysisFlags cliutil.AnalysisFlags
	obsFlags      cliutil.ObsFlags
	distFlags     cliutil.DistFlags

	dumpIR     = flag.Bool("dump", false, "dump the lowered IR")
	dotCFG     = flag.Bool("dot", false, "emit the CFGs in GraphViz DOT format")
	dotSteens  = flag.Bool("dot-hierarchy", false, "emit the Steensgaard points-to hierarchy in DOT format")
	partitions = flag.Bool("partitions", false, "print Steensgaard partitions")
	clusters   = flag.Bool("clusters", false, "print the alias cover")
	stats      = flag.Bool("stats", false, "print timing and cover statistics")

	aliasesOf = flag.String("aliases", "", "comma-separated pointers: print their alias sets")
	ptsOf     = flag.String("pts", "", "comma-separated pointers: print their points-to sets")
	atFunc    = flag.String("at", "", "query location: the exit of this function (default: entry function)")

	races     = flag.Bool("races", false, "run lockset-based race detection")
	nullDeref = flag.Bool("nullderef", false, "run the null/dangling-dereference checker")
)

func init() {
	analysisFlags.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
	distFlags.Register(flag.CommandLine)
}

func main() {
	dist.MaybeWorker() // spawned shard workers re-exec this binary
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bootstrap [flags] program.cpl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		os.Exit(1)
	}
}

func run(path string) (err error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cfg, err := analysisFlags.Config()
	if err != nil {
		return err
	}
	if *dumpIR {
		prog, err := frontend.LowerSource(string(src))
		if err != nil {
			return err
		}
		fmt.Print(prog.Dump())
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()
	cfg.Tracer = sess.Tracer
	cfg.Metrics = sess.Metrics
	if cfg.Cache != nil {
		cfg.Cache.Register(sess.Metrics)
	}
	if *races {
		cfg.Demand = lockset.LockDemand
	}
	var a *core.Analysis
	var distReport *dist.Report
	if distFlags.Enabled() {
		ropts, err := distFlags.Options(analysisFlags.CacheDir)
		if err != nil {
			return err
		}
		ropts.Announce = os.Stderr // lets external aliaswork processes find the port
		res, err := dist.Run(nil, string(src), cfg, ropts)
		if err != nil {
			return err
		}
		a, distReport = res.Analysis, &res.Report
	} else {
		a, err = core.AnalyzeSource(string(src), cfg)
		if err != nil {
			return err
		}
	}

	if *dotCFG {
		fmt.Print(a.Prog.DotCFG())
	}
	if *dotSteens {
		fmt.Print(a.Steens.Dot(6))
	}
	if *partitions {
		fmt.Println("Steensgaard partitions:")
		for _, part := range a.Steens.Partitions() {
			if len(part) < 2 {
				continue
			}
			names := make([]string, len(part))
			for i, v := range part {
				names[i] = a.Prog.VarName(v)
			}
			fmt.Printf("  depth %d: {%s}\n", a.Steens.Depth(part[0]), strings.Join(names, ", "))
		}
	}
	if *clusters {
		fmt.Printf("alias cover (%s): %d clusters\n", cfg.Mode, len(a.Clusters))
		for _, c := range a.Clusters {
			names := make([]string, len(c.Pointers))
			for i, v := range c.Pointers {
				names[i] = a.Prog.VarName(v)
			}
			fmt.Printf("  %s: {%s}\n", c, strings.Join(names, ", "))
		}
	}
	if *stats {
		fmt.Printf("pointers: %d  clusters: %d  %s\n",
			a.Prog.NumVars(), len(a.Clusters), healthSummary(a.Health))
		fmt.Printf("timing: lower=%v steensgaard=%v clustering=%v fscs(seq)=%v fscs(wall)=%v\n",
			a.Timing.Lower, a.Timing.Steensgaard, a.Timing.Clustering, a.Timing.FSCS, a.Timing.Wall)
		var partSizes, clusterSizes []int
		for _, part := range a.Steens.Partitions() {
			partSizes = append(partSizes, len(part))
		}
		for _, c := range a.Clusters {
			clusterSizes = append(clusterSizes, len(c.Pointers))
		}
		pp50, pp90, pmax := bench.SizeHist(partSizes)
		cp50, cp90, cmax := bench.SizeHist(clusterSizes)
		fmt.Printf("partitions: n=%d p50=%d p90=%d max=%d  precise=%v deferred=%d\n",
			len(partSizes), pp50, pp90, pmax, analysisFlags.SteensPrecise, a.Steens.Stats().Deferred)
		fmt.Printf("clusters: n=%d p50=%d p90=%d max=%d\n",
			len(clusterSizes), cp50, cp90, cmax)
		if a.Andersen != nil {
			ss := a.Andersen.SolverStats()
			fmt.Printf("andersen solver: passes=%d collapses=%d merged=%d cycle-elim=%v\n",
				ss.Passes, ss.Collapses, ss.Merged, analysisFlags.CycleElim)
			if ss.Waves > 0 {
				occ := 0.0
				if ss.ParFronts > 0 {
					occ = float64(ss.ParNodes) / float64(ss.ParFronts)
				}
				fmt.Printf("delta solve: waves=%d edges-fired=%d merges=%d par-fronts=%d par-occupancy=%.1f\n",
					ss.Waves, ss.DeltaEdgesFired, ss.DeltaMerges, ss.ParFronts, occ)
			}
		}
		if cfg.Cache != nil {
			cs := a.CacheStats
			fmt.Printf("result cache: hits=%d misses=%d hit-rate=%.2f read=%dB written=%dB\n",
				cs.Hits, cs.Misses, cs.HitRate(), cs.BytesRead, cs.BytesWritten)
		}
		if distReport != nil {
			r := distReport
			fmt.Printf("dist: shards=%d binning=%s completed=%d/%d steals=%d expirations=%d eager-speedup=%.2fx\n",
				r.Shards, r.Binning, r.Completed, r.Items, r.Steals, r.Expirations, r.EagerSpeedup)
			for _, s := range r.PerShard {
				fmt.Printf("  shard %d: workers=%d claims=%d steals=%d busy=%v utilization=%.2f\n",
					s.Shard, s.Workers, s.Claims, s.Steals, time.Duration(s.BusyNS).Round(time.Microsecond), s.Utilization)
			}
		}
	}
	printUnhealthy(a)

	loc, err := queryLoc(a)
	if err != nil {
		return err
	}
	for _, name := range splitList(*aliasesOf) {
		v, ok := a.Prog.VarByName[name]
		if !ok {
			return fmt.Errorf("unknown variable %q", name)
		}
		al := a.Aliases(v, loc)
		names := make([]string, len(al))
		for i, q := range al {
			names[i] = a.Prog.VarName(q)
		}
		fmt.Printf("aliases(%s) at L%d = {%s}\n", name, loc, strings.Join(names, ", "))
	}
	for _, name := range splitList(*ptsOf) {
		v, ok := a.Prog.VarByName[name]
		if !ok {
			return fmt.Errorf("unknown variable %q", name)
		}
		objs, precise := a.PointsTo(v, loc)
		names := make([]string, len(objs))
		for i, o := range objs {
			names[i] = a.Prog.VarName(o)
		}
		note := ""
		if !precise {
			note = " (imprecise: flow-insensitive fallback contributed)"
		}
		fmt.Printf("pts(%s) at L%d = {%s}%s\n", name, loc, strings.Join(names, ", "), note)
	}

	if *races {
		det := lockset.NewDetector(a, lockset.Config{})
		found, accesses := det.Detect()
		fmt.Printf("threads: %d, shared accesses: %d, races: %d\n",
			len(det.Threads()), len(accesses), len(found))
		for _, r := range found {
			fmt.Println("  " + r.Format(a.Prog))
		}
	}
	if *nullDeref {
		warnings := nullcheck.Check(a)
		fmt.Printf("suspicious dereferences: %d\n", len(warnings))
		fmt.Print(nullcheck.FormatAll(a.Prog, warnings))
	}
	return nil
}

// healthSummary condenses the per-cluster health report into one field
// of the stats line, e.g. "healthy: 12" or "healthy: 10 recovered: 1
// degraded: 1".
func healthSummary(hs []core.ClusterHealth) string {
	counts := map[core.HealthStatus]int{}
	for _, h := range hs {
		counts[h.Status]++
	}
	parts := []string{fmt.Sprintf("healthy: %d", counts[core.HealthOK])}
	for _, s := range []core.HealthStatus{
		core.HealthRetried, core.HealthRecovered,
		core.HealthExhausted, core.HealthTimedOut, core.HealthDegraded,
	} {
		if counts[s] > 0 {
			parts = append(parts, fmt.Sprintf("%s: %d", s, counts[s]))
		}
	}
	return strings.Join(parts, "  ")
}

// printUnhealthy reports every cluster the scheduler had to retry or
// demote, so degraded precision never goes unnoticed.
func printUnhealthy(a *core.Analysis) {
	for _, h := range a.Health {
		if h.Status == core.HealthOK {
			continue
		}
		note := ""
		if h.Err != nil {
			note = fmt.Sprintf(" (%v)", h.Err)
		}
		if h.Demoted {
			note += " — demoted to the flow-insensitive fallback"
		}
		fmt.Fprintf(os.Stderr, "bootstrap: cluster %d %s after %d attempt(s) in %v%s\n",
			h.ClusterID, h.Status, h.Attempts, h.Elapsed.Round(time.Microsecond), note)
	}
}

func queryLoc(a *core.Analysis) (ir.Loc, error) {
	fn := a.Prog.Entry
	if *atFunc != "" {
		id, ok := a.Prog.FuncByName[*atFunc]
		if !ok {
			return ir.NoLoc, fmt.Errorf("unknown function %q", *atFunc)
		}
		fn = id
	}
	return a.Prog.Func(fn).Exit, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
