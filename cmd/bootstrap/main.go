// Command bootstrap analyzes a CPL program with the paper's bootstrapped
// flow- and context-sensitive pointer alias analysis and answers queries.
//
// Usage:
//
//	bootstrap [flags] program.cpl
//
// Examples:
//
//	bootstrap -partitions prog.cpl            # Steensgaard partitions
//	bootstrap -clusters prog.cpl              # the alias cover
//	bootstrap -aliases p,q -at main prog.cpl  # FSCS alias sets
//	bootstrap -pts x -at main prog.cpl        # FSCS points-to set
//	bootstrap -races prog.cpl                 # lockset race detection
//	bootstrap -mode none -stats prog.cpl      # unclustered baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/lockset"
	"bootstrap/internal/nullcheck"
)

var (
	mode       = flag.String("mode", "andersen", "clustering mode: none|steensgaard|andersen|syntactic")
	threshold  = flag.Int("threshold", 0, "Andersen threshold (0 = default 60)")
	useOneFlow = flag.Bool("oneflow", false, "insert the One-Flow cascade stage")
	workers    = flag.Int("workers", 0, "parallel cluster workers (0 = GOMAXPROCS)")
	budget     = flag.Int64("budget", 0, "per-cluster work budget (0 = unlimited)")

	dumpIR     = flag.Bool("dump", false, "dump the lowered IR")
	dotCFG     = flag.Bool("dot", false, "emit the CFGs in GraphViz DOT format")
	dotSteens  = flag.Bool("dot-hierarchy", false, "emit the Steensgaard points-to hierarchy in DOT format")
	partitions = flag.Bool("partitions", false, "print Steensgaard partitions")
	clusters   = flag.Bool("clusters", false, "print the alias cover")
	stats      = flag.Bool("stats", false, "print timing and cover statistics")

	aliasesOf = flag.String("aliases", "", "comma-separated pointers: print their alias sets")
	ptsOf     = flag.String("pts", "", "comma-separated pointers: print their points-to sets")
	atFunc    = flag.String("at", "", "query location: the exit of this function (default: entry function)")

	races     = flag.Bool("races", false, "run lockset-based race detection")
	nullDeref = flag.Bool("nullderef", false, "run the null/dangling-dereference checker")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bootstrap [flags] program.cpl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "none":
		return core.ModeNone, nil
	case "steensgaard", "steens":
		return core.ModeSteensgaard, nil
	case "andersen":
		return core.ModeAndersen, nil
	case "syntactic":
		return core.ModeSyntactic, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func run(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	if *dumpIR {
		prog, err := frontend.LowerSource(string(src))
		if err != nil {
			return err
		}
		fmt.Print(prog.Dump())
	}
	cfg := core.Config{
		Mode:              m,
		AndersenThreshold: *threshold,
		UseOneFlow:        *useOneFlow,
		Workers:           *workers,
		ClusterBudget:     *budget,
	}
	if *races {
		cfg.Demand = lockset.LockDemand
	}
	a, err := core.AnalyzeSource(string(src), cfg)
	if err != nil {
		return err
	}

	if *dotCFG {
		fmt.Print(a.Prog.DotCFG())
	}
	if *dotSteens {
		fmt.Print(a.Steens.Dot(6))
	}
	if *partitions {
		fmt.Println("Steensgaard partitions:")
		for _, part := range a.Steens.Partitions() {
			if len(part) < 2 {
				continue
			}
			names := make([]string, len(part))
			for i, v := range part {
				names[i] = a.Prog.VarName(v)
			}
			fmt.Printf("  depth %d: {%s}\n", a.Steens.Depth(part[0]), strings.Join(names, ", "))
		}
	}
	if *clusters {
		fmt.Printf("alias cover (%s): %d clusters\n", m, len(a.Clusters))
		for _, c := range a.Clusters {
			names := make([]string, len(c.Pointers))
			for i, v := range c.Pointers {
				names[i] = a.Prog.VarName(v)
			}
			fmt.Printf("  %s: {%s}\n", c, strings.Join(names, ", "))
		}
	}
	if *stats {
		fmt.Printf("pointers: %d  clusters: %d  exhausted: %d\n",
			a.Prog.NumVars(), len(a.Clusters), len(a.Exhausted))
		fmt.Printf("timing: steensgaard=%v clustering=%v fscs(seq)=%v fscs(wall)=%v\n",
			a.Timing.Steensgaard, a.Timing.Clustering, a.Timing.FSCS, a.Timing.Wall)
	}

	loc, err := queryLoc(a)
	if err != nil {
		return err
	}
	for _, name := range splitList(*aliasesOf) {
		v, ok := a.Prog.VarByName[name]
		if !ok {
			return fmt.Errorf("unknown variable %q", name)
		}
		al := a.Aliases(v, loc)
		names := make([]string, len(al))
		for i, q := range al {
			names[i] = a.Prog.VarName(q)
		}
		fmt.Printf("aliases(%s) at L%d = {%s}\n", name, loc, strings.Join(names, ", "))
	}
	for _, name := range splitList(*ptsOf) {
		v, ok := a.Prog.VarByName[name]
		if !ok {
			return fmt.Errorf("unknown variable %q", name)
		}
		objs, precise := a.PointsTo(v, loc)
		names := make([]string, len(objs))
		for i, o := range objs {
			names[i] = a.Prog.VarName(o)
		}
		note := ""
		if !precise {
			note = " (imprecise: flow-insensitive fallback contributed)"
		}
		fmt.Printf("pts(%s) at L%d = {%s}%s\n", name, loc, strings.Join(names, ", "), note)
	}

	if *races {
		det := lockset.NewDetector(a, lockset.Config{})
		found, accesses := det.Detect()
		fmt.Printf("threads: %d, shared accesses: %d, races: %d\n",
			len(det.Threads()), len(accesses), len(found))
		for _, r := range found {
			fmt.Println("  " + r.Format(a.Prog))
		}
	}
	if *nullDeref {
		warnings := nullcheck.Check(a)
		fmt.Printf("suspicious dereferences: %d\n", len(warnings))
		fmt.Print(nullcheck.FormatAll(a.Prog, warnings))
	}
	return nil
}

func queryLoc(a *core.Analysis) (ir.Loc, error) {
	fn := a.Prog.Entry
	if *atFunc != "" {
		id, ok := a.Prog.FuncByName[*atFunc]
		if !ok {
			return ir.NoLoc, fmt.Errorf("unknown function %q", *atFunc)
		}
		fn = id
	}
	return a.Prog.Func(fn).Exit, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
