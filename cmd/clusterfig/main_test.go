package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// resetFlags restores this command's flags (not the test framework's) to
// their defaults between runs.
func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

func TestRunSmoke(t *testing.T) {
	resetFlags()
	_ = flag.Set("scale", "0.05")
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("missing figure header:\n%s", out.String())
	}
}

func TestRunUnknownBench(t *testing.T) {
	resetFlags()
	_ = flag.Set("bench", "nosuchbench")
	var out bytes.Buffer
	if err := run(&out); err == nil {
		t.Error("unknown benchmark should error")
	}
}
