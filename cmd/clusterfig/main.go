// Command clusterfig regenerates the paper's Figure 1: the cluster-size
// frequency distribution of Steensgaard partitions vs Andersen clusters
// for one benchmark (the paper uses the Linux driver autofs).
//
// Usage:
//
//	clusterfig [-bench autofs] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bootstrap/internal/bench"
	"bootstrap/internal/cliutil"
	"bootstrap/internal/synth"
)

var (
	name  = flag.String("bench", "autofs", "benchmark name (a Table 1 row)")
	scale = flag.Float64("scale", 1.0, "workload scale (1.0 = paper-sized)")

	obsFlags cliutil.ObsFlags
)

func init() {
	obsFlags.Register(flag.CommandLine)
}

func main() {
	flag.Parse()
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clusterfig:", err)
		os.Exit(1)
	}
}

func run(out io.Writer) (err error) {
	b, ok := synth.FindBenchmark(*name)
	if !ok {
		msg := fmt.Sprintf("unknown benchmark %q; rows:", *name)
		for _, row := range synth.Table1 {
			msg += "\n  " + row.Name
		}
		return fmt.Errorf("%s", msg)
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()
	sh, ah, err := bench.Figure1(b, bench.Options{Scale: *scale, Tracer: sess.Tracer, Metrics: sess.Metrics})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 1 — cluster size frequencies for %s (scale %.2f):\n\n", b.Name, *scale)
	fmt.Fprint(out, bench.FormatHistogram(sh, ah))
	fmt.Fprintf(out, "\nmax Steensgaard partition: %d, max Andersen cluster: %d\n",
		sh[len(sh)-1].Size, ah[len(ah)-1].Size)
	return nil
}
