// Command clusterfig regenerates the paper's Figure 1: the cluster-size
// frequency distribution of Steensgaard partitions vs Andersen clusters
// for one benchmark (the paper uses the Linux driver autofs).
//
// Usage:
//
//	clusterfig [-bench autofs] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"

	"bootstrap/internal/bench"
	"bootstrap/internal/synth"
)

var (
	name  = flag.String("bench", "autofs", "benchmark name (a Table 1 row)")
	scale = flag.Float64("scale", 1.0, "workload scale (1.0 = paper-sized)")
)

func main() {
	flag.Parse()
	b, ok := synth.FindBenchmark(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "clusterfig: unknown benchmark %q; rows:\n", *name)
		for _, row := range synth.Table1 {
			fmt.Fprintln(os.Stderr, " ", row.Name)
		}
		os.Exit(1)
	}
	sh, ah, err := bench.Figure1(b, bench.Options{Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterfig:", err)
		os.Exit(1)
	}
	fmt.Printf("Figure 1 — cluster size frequencies for %s (scale %.2f):\n\n", b.Name, *scale)
	fmt.Print(bench.FormatHistogram(sh, ah))
	fmt.Printf("\nmax Steensgaard partition: %d, max Andersen cluster: %d\n",
		sh[len(sh)-1].Size, ah[len(ah)-1].Size)
}
