package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resetFlags restores this command's flags (not the test framework's) to
// their defaults between runs.
func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

func TestLintTextSmoke(t *testing.T) {
	resetFlags()
	_ = flag.Set("synth", "lockheavy_small")
	var out bytes.Buffer
	code, err := run(&out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code %d on a seeded workload, want 1", code)
	}
	for _, want := range []string{"race", "use-after-free", "double-free", "deadlock"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestLintSARIFAndBaseline(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "baseline.sarif")

	resetFlags()
	_ = flag.Set("synth", "lockheavy_small")
	_ = flag.Set("format", "sarif")
	_ = flag.Set("out", sarifPath)
	var out bytes.Buffer
	code, err := run(&out)
	if err != nil {
		t.Fatalf("sarif run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}

	// The emitted log is valid SARIF with results.
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("read sarif: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("sarif does not decode: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("sarif shape: version %q, %d runs", log.Version, len(log.Runs))
	}

	// Suppressing against that log hides every finding.
	resetFlags()
	_ = flag.Set("synth", "lockheavy_small")
	_ = flag.Set("baseline", sarifPath)
	out.Reset()
	code, err = run(&out)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code %d with a full baseline, want 0\n%s", code, out.String())
	}
}

func TestLintBadInputs(t *testing.T) {
	resetFlags()
	_ = flag.Set("synth", "nosuchworkload")
	if _, err := run(&bytes.Buffer{}); err == nil {
		t.Error("unknown -synth workload should error")
	}

	resetFlags()
	_ = flag.Set("synth", "lockheavy_small")
	_ = flag.Set("passes", "nosuchpass")
	if _, err := run(&bytes.Buffer{}); err == nil {
		t.Error("unknown pass should error")
	}
}
