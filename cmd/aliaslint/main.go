// Command aliaslint is the batch driver of the unified checker engine:
// it runs the pluggable static-analysis passes (lockset race detection,
// deadlock, null-dereference, use-after-free) over a CPL program on top
// of the demand-driven bootstrapped alias analysis, and emits either a
// human-readable report or SARIF 2.1.0 for CI ingestion.
//
// Usage:
//
//	aliaslint [flags] program.cpl
//	aliaslint -synth lockheavy_small [flags]
//
// Examples:
//
//	aliaslint prog.cpl                          # all passes, text report
//	aliaslint -passes lockset,deadlock prog.cpl # just the lock passes
//	aliaslint -format sarif -out r.sarif p.cpl  # SARIF 2.1.0
//	aliaslint -baseline old.sarif p.cpl         # suppress known findings
//	aliaslint -cache-dir .lint p.cpl            # warm reruns are near-free
//	aliaslint -synth lockheavy_large -stats     # seeded checker workload
//
// The analysis runs lazily: only clusters in the selected passes' union
// footprint (lock pointers, dereferenced pointers, freed pointers) are
// solved, on first touch, single-flight, imported from -cache-dir when
// warm. Each pass runs in parallel under -pass-timeout; a pass that
// out-runs its deadline degrades through the fallback ladder and is
// marked incomplete instead of blocking the others.
//
// Exit status: 0 = clean, 1 = findings reported, 2 = error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bootstrap/internal/check"
	"bootstrap/internal/cliutil"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

var (
	analysisFlags cliutil.AnalysisFlags
	obsFlags      cliutil.ObsFlags

	passNames   = flag.String("passes", "all", "comma-separated passes to run (lockset, deadlock, nullcheck, uaf) or \"all\"")
	format      = flag.String("format", "text", "report format: text or sarif")
	outPath     = flag.String("out", "", "write the report to this file (default stdout)")
	baseline    = flag.String("baseline", "", "SARIF file from a previous run; its fingerprints are suppressed")
	passTimeout = flag.Duration("pass-timeout", 30*time.Second, "per-pass deadline; an out-deadlined pass degrades and reports incomplete (0 = none)")
	synthName   = flag.String("synth", "", "analyze a synthetic workload instead of a file: a lockheavy preset (lockheavy_small/medium/large) or a Table 1 benchmark name")
	synthScale  = flag.Float64("synth-scale", 0.12, "size scale for Table 1 synthetic benchmarks")
	stats       = flag.Bool("stats", false, "print demand, solve and cache statistics after the report")
)

func init() {
	analysisFlags.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
}

func main() {
	flag.Parse()
	code, err := run(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aliaslint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(stdout io.Writer) (int, error) {
	src, name, err := loadSource()
	if err != nil {
		return 0, err
	}
	passes, err := check.Select(*passNames)
	if err != nil {
		return 0, err
	}
	var base map[string]bool
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			return 0, err
		}
		base, err = check.ReadBaseline(f)
		f.Close()
		if err != nil {
			return 0, err
		}
	}

	session, err := obsFlags.Start()
	if err != nil {
		return 0, err
	}
	defer session.Close()

	cfg, err := analysisFlags.Config()
	if err != nil {
		return 0, err
	}
	prog, err := frontend.LowerSource(src)
	if err != nil {
		return 0, err
	}
	// The checker shape: lazy analysis, demand = the passes' union
	// footprint. Nothing solves until a pass asks.
	cfg.Lazy = true
	cfg.Demand = check.DemandFor(prog, passes)
	cfg.Tracer = session.Tracer
	cfg.Metrics = session.Metrics

	a, err := core.AnalyzeProgram(prog, cfg)
	if err != nil {
		return 0, err
	}

	rep := check.Run(context.Background(), a, check.Options{
		Passes:      passes,
		PassTimeout: *passTimeout,
		Baseline:    base,
		Source:      name,
		Tracer:      session.Tracer,
		Metrics:     session.Metrics,
	})

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "text":
		io.WriteString(out, check.FormatText(rep))
	case "sarif":
		if err := check.WriteSARIF(out, rep); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("unknown -format %q (want text or sarif)", *format)
	}

	if *stats {
		solved, demoted := a.SolveStats()
		fmt.Fprintf(stdout, "clusters: %d total, %d solved on demand, %d demoted; %d pointers covered\n",
			len(a.Clusters), solved, demoted, len(a.CoveredPointers()))
		if cfg.Cache != nil {
			cs := cfg.Cache.Stats()
			fmt.Fprintf(stdout, "cache: %d hits, %d misses\n", cs.Hits, cs.Misses)
		}
		for _, res := range rep.Results {
			fmt.Fprintf(stdout, "pass %s: %d finding(s), %d suppressed, %v\n",
				res.Pass, len(res.Diags), res.Suppressed, res.Elapsed.Round(time.Microsecond))
		}
	}

	for _, res := range rep.Results {
		if res.Err != nil {
			return 0, fmt.Errorf("pass %s: %w", res.Pass, res.Err)
		}
	}
	if len(rep.Diagnostics()) > 0 {
		return 1, nil
	}
	return 0, nil
}

// loadSource resolves the input: -synth name (lockheavy preset or
// Table 1 benchmark) or a positional .cpl path.
func loadSource() (src, name string, err error) {
	if *synthName != "" {
		if src, _, ok := synth.LockHeavyByName(*synthName); ok {
			return src, *synthName + ".cpl", nil
		}
		if b, ok := synth.FindBenchmark(*synthName); ok {
			return synth.Generate(b, *synthScale), *synthName + ".cpl", nil
		}
		return "", "", fmt.Errorf("unknown -synth workload %q", *synthName)
	}
	if flag.NArg() != 1 {
		return "", "", fmt.Errorf("usage: aliaslint [flags] program.cpl (or -synth name)")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return "", "", err
	}
	return string(data), flag.Arg(0), nil
}
