package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bootstrap/internal/bench"
)

// resetFlags restores this command's flags (not the test framework's) to
// their defaults between runs.
func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

func TestRunTableSmoke(t *testing.T) {
	resetFlags()
	_ = flag.Set("rows", "sock")
	_ = flag.Set("scale", "0.05")
	_ = flag.Set("skip-monolithic", "true")
	_ = flag.Set("timings", "true")
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("table run: %v", err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("missing table header:\n%s", out.String())
	}

	resetFlags()
	_ = flag.Set("rows", "nosuchbench")
	if err := run(&out); err == nil {
		t.Error("unknown row should error")
	}
}

func TestRunSweepSmoke(t *testing.T) {
	resetFlags()
	_ = flag.Set("sweep", "sock")
	_ = flag.Set("scale", "0.05")
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("sweep run: %v", err)
	}
	if !strings.Contains(out.String(), "ablation") {
		t.Errorf("missing sweep header:\n%s", out.String())
	}

	resetFlags()
	_ = flag.Set("sweep", "nosuchbench")
	if err := run(&out); err == nil {
		t.Error("unknown sweep benchmark should error")
	}
}

// TestRunFSCSJSONAndAssert exercises the whole bench-gate loop end to
// end: measure a cold report into a warm cache directory, re-measure
// (now fully warm), then run the -assert gate fresh-vs-fresh, which must
// pass by construction.
func TestRunFSCSJSONAndAssert(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	freshPath := filepath.Join(dir, "fresh.json")

	measure := func(path string) {
		resetFlags()
		_ = flag.Set("rows", "sock")
		_ = flag.Set("scale", "0.05")
		_ = flag.Set("perf-reps", "1")
		_ = flag.Set("cache-dir", filepath.Join(dir, "cache"))
		_ = flag.Set("fscs-json", path)
		var out bytes.Buffer
		if err := run(&out); err != nil {
			t.Fatalf("fscs-json run: %v", err)
		}
	}
	measure(basePath)
	measure(freshPath) // warm: the first run populated the cache dir

	fr, err := bench.ReadFSCSJSONFile(freshPath)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Points[0].CacheHitRate != 1.0 {
		t.Fatalf("second run hit rate = %v, want 1.0", fr.Points[0].CacheHitRate)
	}

	resetFlags()
	_ = flag.Set("assert", "true")
	_ = flag.Set("baseline", freshPath)
	_ = flag.Set("fresh", freshPath)
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("self-assert should pass: %v", err)
	}
	if !strings.Contains(out.String(), "bench gate") {
		t.Errorf("missing gate summary:\n%s", out.String())
	}
}

func TestRunAssertSeededRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, cluster float64) string {
		rep := bench.FSCSPerfReport{
			Scale: 0.12, Reps: 3,
			Points: []bench.FSCSPerfPoint{{
				Bench: "sock", ClusterSpeedup: cluster, ProgramSpeedup: 2.5, CacheHitRate: 1.0,
			}},
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := bench.WriteFSCSJSON(f, rep); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	base := write("base.json", 3.0)
	regressed := write("fresh.json", 3.0*0.8) // seeded >15% regression

	resetFlags()
	_ = flag.Set("assert", "true")
	_ = flag.Set("baseline", base)
	_ = flag.Set("fresh", regressed)
	var out bytes.Buffer
	if err := run(&out); err == nil {
		t.Fatal("seeded 20% regression must fail the gate")
	}

	resetFlags()
	_ = flag.Set("assert", "true")
	_ = flag.Set("baseline", filepath.Join(dir, "missing.json"))
	_ = flag.Set("fresh", regressed)
	if err := run(&out); err == nil {
		t.Error("missing baseline should error")
	}
}
