// Command benchtab regenerates the paper's Table 1 over the synthetic
// workload suite: flow- and context-sensitive alias analysis without
// clustering, with Steensgaard clustering, and with bootstrapped Andersen
// clustering, including the greedy 5-machine parallel simulation.
//
// Usage:
//
//	benchtab [-scale 0.2] [-rows sock,autofs,sendmail] [-compare] [-sweep autofs]
//
// Absolute times differ from the paper's 2008 hardware; the shape — who
// wins, by what rough factor, and where Andersen clustering stops paying
// off — is the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bootstrap/internal/bench"
	"bootstrap/internal/synth"
)

var (
	scale   = flag.Float64("scale", 0.2, "workload scale (1.0 = paper-sized)")
	parts   = flag.Int("parts", 5, "simulated machines for the parallel columns")
	budget  = flag.Int64("budget", 3_000_000, "work budget for the unclustered baseline (the 15-min analogue)")
	rows    = flag.String("rows", "", "comma-separated benchmark names (default: all 20)")
	skipNC  = flag.Bool("skip-monolithic", false, "skip the unclustered baseline column")
	compare = flag.Bool("compare", false, "also print the paper-vs-measured comparison")
	sweep   = flag.String("sweep", "", "run the Andersen-threshold ablation on this benchmark instead")

	clusterTimeout = flag.Duration("cluster-timeout", 0, "per-cluster wall-clock deadline per engine attempt (0 = none)")
	retries        = flag.Int("retries", 0, "degradation-ladder retries per failed cluster (0 = single attempt, the historical bench behavior)")

	fscsJSON = flag.String("fscs-json", "", "write the FSCS perf trajectory (interned vs legacy, pipelined vs serial, cold vs warm cache) to this file and exit")
	perfReps = flag.Int("perf-reps", 3, "best-of-N repetitions for -fscs-json measurements")
	timings  = flag.Bool("timings", false, "also print per-stage timing columns (fixed cover order, diff-friendly)")
	cacheDir = flag.String("cache-dir", "", "persistent directory for the per-cluster result cache; a second run against the same directory starts fully warm (cache_hit_rate 1.0)")
)

func main() {
	flag.Parse()
	opt := bench.Options{
		Scale:            *scale,
		Parts:            *parts,
		Budget:           *budget,
		SkipNoClustering: *skipNC,
		ClusterTimeout:   *clusterTimeout,
		Retries:          *retries,
		CacheDir:         *cacheDir,
	}
	if *sweep != "" {
		b, ok := synth.FindBenchmark(*sweep)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown benchmark %q\n", *sweep)
			os.Exit(1)
		}
		points, err := bench.ThresholdSweep(b, []int{4, 8, 16, 32, 60, 120, 1 << 30}, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Printf("Andersen-threshold ablation on %s (scale %.2f):\n", b.Name, *scale)
		fmt.Print(bench.FormatSweep(points))
		return
	}

	suite := synth.Table1
	if *rows != "" {
		suite = nil
		for _, name := range strings.Split(*rows, ",") {
			b, ok := synth.FindBenchmark(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown benchmark %q\n", name)
				os.Exit(1)
			}
			suite = append(suite, b)
		}
	}
	if *fscsJSON != "" {
		report, err := bench.FSCSPerf(suite, opt, *perfReps, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		f, err := os.Create(*fscsJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		if err := bench.WriteFSCSJSON(f, report); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d workloads)\n", *fscsJSON, len(report.Points))
		return
	}
	measured, err := bench.RunTable(suite, opt, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	fmt.Printf("\nTable 1 (scale %.2f, %d simulated machines):\n\n", *scale, *parts)
	fmt.Print(bench.FormatTable(measured))
	if *timings {
		fmt.Println("\nPer-stage timings (fixed cover order):")
		fmt.Print(bench.FormatTimings(measured))
	}
	if *compare {
		fmt.Println("\nPaper vs measured (shape comparison):")
		fmt.Print(bench.FormatComparison(measured))
	}
}
