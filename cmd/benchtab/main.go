// Command benchtab regenerates the paper's Table 1 over the synthetic
// workload suite: flow- and context-sensitive alias analysis without
// clustering, with Steensgaard clustering, and with bootstrapped Andersen
// clustering, including the greedy 5-machine parallel simulation.
//
// Usage:
//
//	benchtab [-scale 0.2] [-rows sock,autofs,sendmail] [-compare] [-sweep autofs]
//	benchtab -assert -baseline BENCH_fscs.json -fresh BENCH_fresh.json
//
// -assert is the CI bench-regression gate: it compares a freshly measured
// FSCS perf report against the committed baseline and exits non-zero when
// a machine-independent speedup ratio regressed by more than 15% or a
// warm rerun failed to serve fully from the result cache.
//
// Absolute times differ from the paper's 2008 hardware; the shape — who
// wins, by what rough factor, and where Andersen clustering stops paying
// off — is the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bootstrap/internal/bench"
	"bootstrap/internal/cliutil"
	"bootstrap/internal/dist"
	"bootstrap/internal/synth"
)

var (
	scale   = flag.Float64("scale", 0.2, "workload scale (1.0 = paper-sized)")
	parts   = flag.Int("parts", 5, "simulated machines for the parallel columns")
	budget  = flag.Int64("budget", 3_000_000, "work budget for the unclustered baseline (the 15-min analogue)")
	rows    = flag.String("rows", "", "comma-separated benchmark names (default: all 20)")
	skipNC  = flag.Bool("skip-monolithic", false, "skip the unclustered baseline column")
	compare = flag.Bool("compare", false, "also print the paper-vs-measured comparison")
	sweep   = flag.String("sweep", "", "run the Andersen-threshold ablation on this benchmark instead")

	clusterTimeout = flag.Duration("cluster-timeout", 0, "per-cluster wall-clock deadline per engine attempt (0 = none)")
	retries        = flag.Int("retries", 0, "degradation-ladder retries per failed cluster (0 = single attempt, the historical bench behavior)")

	fscsJSON = flag.String("fscs-json", "", "write the FSCS perf trajectory (interned vs legacy, pipelined vs serial, cold vs warm cache) to this file and exit")
	perfReps = flag.Int("perf-reps", 3, "best-of-N repetitions for -fscs-json measurements")
	timings  = flag.Bool("timings", false, "also print per-stage timing columns (fixed cover order, diff-friendly)")
	cacheDir = flag.String("cache-dir", "", "persistent directory for the per-cluster result cache; a second run against the same directory starts fully warm (cache_hit_rate 1.0)")

	assert   = flag.Bool("assert", false, "bench-regression gate: compare -fresh against -baseline and exit non-zero on a >15% speedup regression or a cold warm-run cache; with -shards N, instead run a fresh distributed sweep and assert its invariants (completion, bit-identity, speedup, steal vs greedy)")
	baseline = flag.String("baseline", "BENCH_fscs.json", "committed baseline report for -assert")
	fresh    = flag.String("fresh", "BENCH_fresh.json", "freshly measured report for -assert")

	shardJSON = flag.String("shard-json", "", "write the distributed-execution sweep (shards 1/2/4/8 × steal/greedy, per-shard utilization, eager speedup) to this file and exit")

	checkBench = flag.Bool("check", false, "run the checker benchmark instead: every lockheavy preset cold then warm, seeded-bug recall, cold/warm digest drift; with -assert, gate against -baseline BENCH_check.json")
	checkJSON  = flag.String("check-json", "", "with -check, write the checker report to this file")

	incrBench = flag.Bool("incremental", false, "run the incremental-edit benchmark instead: a deterministic storm of single-statement edits per workload through core.ApplyEdit, measuring edit-to-answer latency, dirty-cluster fraction and differential identity; with -assert, gate latency/reuse/identity invariants and workload-set equality against -baseline BENCH_incremental.json")
	incrJSON  = flag.String("incr-json", "", "with -incremental, write the incremental report to this file")
	incrEdits = flag.String("edits", incrBenchRows, "with -incremental, comma-separated workloads for the edit storm")

	obsFlags  cliutil.ObsFlags
	distFlags cliutil.DistFlags
)

// shardBenchRows is the default suite of the -shard-json sweep: the
// four largest BENCH_ROWS workloads, where sharding has enough cluster
// weight to matter.
const shardBenchRows = "sock,autofs,raid,mt_daapd"

// incrBenchRows is the default suite of the -incremental edit storm:
// the same four workloads, where the cover is wide enough that
// single-statement edits leave most clusters untouched.
const incrBenchRows = "sock,autofs,raid,mt_daapd"

func init() {
	obsFlags.Register(flag.CommandLine)
	distFlags.Register(flag.CommandLine)
}

func main() {
	dist.MaybeWorker() // spawned shard workers re-exec this binary
	flag.Parse()
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(out io.Writer) (err error) {
	if *checkBench {
		return runCheck(out)
	}
	if *incrBench {
		return runIncr(out)
	}
	if *assert && !distFlags.Enabled() && *shardJSON == "" {
		return runAssert(out, *baseline, *fresh)
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()
	opt := bench.Options{
		Scale:            *scale,
		Parts:            *parts,
		Budget:           *budget,
		SkipNoClustering: *skipNC,
		ClusterTimeout:   *clusterTimeout,
		Retries:          *retries,
		CacheDir:         *cacheDir,
		Tracer:           sess.Tracer,
		Metrics:          sess.Metrics,
	}
	if *sweep != "" {
		b, ok := synth.FindBenchmark(*sweep)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *sweep)
		}
		points, err := bench.ThresholdSweep(b, []int{4, 8, 16, 32, 60, 120, 1 << 30}, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Andersen-threshold ablation on %s (scale %.2f):\n", b.Name, *scale)
		fmt.Fprint(out, bench.FormatSweep(points))
		return nil
	}

	suite := synth.Table1
	if *rows != "" {
		suite = nil
		for _, name := range strings.Split(*rows, ",") {
			b, ok := synth.FindBenchmark(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown benchmark %q", name)
			}
			suite = append(suite, b)
		}
	}
	if *shardJSON != "" || distFlags.Enabled() {
		return runShards(out, suite, opt)
	}
	if *fscsJSON != "" {
		report, err := bench.FSCSPerf(suite, opt, *perfReps, os.Stderr)
		if err != nil {
			return err
		}
		f, err := os.Create(*fscsJSON)
		if err != nil {
			return err
		}
		if err := bench.WriteFSCSJSON(f, report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d workloads)\n", *fscsJSON, len(report.Points))
		return nil
	}
	measured, err := bench.RunTable(suite, opt, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nTable 1 (scale %.2f, %d simulated machines):\n\n", *scale, *parts)
	fmt.Fprint(out, bench.FormatTable(measured))
	if *timings {
		fmt.Fprintln(out, "\nPer-stage timings (fixed cover order):")
		fmt.Fprint(out, bench.FormatTimings(measured))
	}
	if *compare {
		fmt.Fprintln(out, "\nPaper vs measured (shape comparison):")
		fmt.Fprint(out, bench.FormatComparison(measured))
	}
	return nil
}

// runShards is the distributed-execution benchmark: sweep the shard
// axis over the suite, optionally write BENCH_shard.json, and — under
// -assert — gate on the sweep's invariants (every cell completed and
// bit-identical, speedup floor at the top shard count, work stealing
// never behind greedy binning).
func runShards(out io.Writer, suite []synth.Benchmark, opt bench.Options) error {
	if *rows == "" {
		suite = nil
		for _, name := range strings.Split(shardBenchRows, ",") {
			b, _ := synth.FindBenchmark(name)
			suite = append(suite, b)
		}
	}
	counts := []int{1, 2, 4, 8}
	if distFlags.Enabled() {
		counts = []int{1, distFlags.Shards}
		if distFlags.Shards == 1 {
			counts = []int{1}
		}
	}
	report, err := bench.ShardPerf(suite, counts, opt, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Distributed eager solve (scale %.2f, busy = per-process CPU time):\n\n", *scale)
	fmt.Fprint(out, bench.FormatShard(report))
	if *shardJSON != "" {
		f, err := os.Create(*shardJSON)
		if err != nil {
			return err
		}
		if err := bench.WriteShardJSON(f, report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s (%d workloads)\n", *shardJSON, len(report.Points))
	}
	if *assert {
		errs := bench.AssertShard(report)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchtab: shard gate:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d shard invariant(s) violated", len(errs))
		}
		fmt.Fprintf(out, "\nshard gate: %d workloads completed, bit-identical, speedup and steal-vs-greedy floors held\n",
			len(report.Points))
	}
	return nil
}

// runCheck is the checker benchmark: every lockheavy preset runs every
// registered pass cold then warm against the same cache directory,
// scoring recall against the generator's seeded ground truth. Under
// -assert it gates the fresh report's own invariants (recall 1.0, zero
// cold/warm drift, fully-cached warm rerun) plus per-rule findings
// counts against the committed baseline.
func runCheck(out io.Writer) error {
	report, err := bench.CheckPerf(synth.LockHeavyWorkloads(), os.Stderr)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Checker benchmark (lockheavy suite, all passes, cold vs warm cache):")
	fmt.Fprintln(out)
	fmt.Fprint(out, bench.FormatCheck(report))
	if *checkJSON != "" {
		f, err := os.Create(*checkJSON)
		if err != nil {
			return err
		}
		if err := bench.WriteCheckJSON(f, report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s (%d workloads)\n", *checkJSON, len(report.Points))
	}
	if *assert {
		base, err := bench.ReadCheckJSONFile(*baseline)
		if err != nil {
			return err
		}
		errs := bench.AssertCheck(base, report)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchtab: check gate:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d checker invariant(s) violated (baseline %s)", len(errs), *baseline)
		}
		fmt.Fprintf(out, "\ncheck gate: %d workloads at full recall, zero drift, warm reruns fully cached\n",
			len(report.Points))
	}
	return nil
}

// runIncr is the incremental-edit benchmark: per workload, a full
// analysis followed by a deterministic storm of single-statement edits
// through core.ApplyEdit, each timed edit-to-answer, with periodic
// differential checks against a from-scratch analysis. Under -assert it
// gates the fresh report's latency budget, dirty-cluster reuse floor,
// zero-fallback and identity-check invariants, plus workload-set
// equality against the committed baseline.
func runIncr(out io.Writer) error {
	var names []string
	for _, name := range strings.Split(*incrEdits, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	report, err := bench.IncrPerf(names, *scale, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Incremental edit storm (ApplyEdit, edit-to-answer latency):")
	fmt.Fprintln(out)
	fmt.Fprint(out, bench.FormatIncr(report))
	if *incrJSON != "" {
		f, err := os.Create(*incrJSON)
		if err != nil {
			return err
		}
		if err := bench.WriteIncrJSON(f, report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s (%d workloads)\n", *incrJSON, len(report.Points))
	}
	if *assert {
		var base *bench.IncrReport
		if *baseline != "" {
			base, err = bench.ReadIncrJSONFile(*baseline)
			if err != nil {
				return err
			}
		}
		errs := bench.AssertIncr(base, report)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchtab: incremental gate:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d incremental invariant(s) violated", len(errs))
		}
		fmt.Fprintf(out, "\nincremental gate: %d workloads under the %dms p50 CI budget, dirty fraction under %.0f%%, zero fallbacks, identity held\n",
			len(report.Points), bench.IncrP50BudgetUS/1000, bench.IncrDirtyFracLimit*100)
	}
	return nil
}

// runAssert is the bench-regression gate: one error line per violated
// invariant, an error (non-zero exit) when any fired.
func runAssert(out io.Writer, basePath, freshPath string) error {
	base, err := bench.ReadFSCSJSONFile(basePath)
	if err != nil {
		return err
	}
	fr, err := bench.ReadFSCSJSONFile(freshPath)
	if err != nil {
		return err
	}
	errs := bench.AssertFSCS(base, fr)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "benchtab: regression:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d bench invariant(s) violated (baseline %s, fresh %s)", len(errs), basePath, freshPath)
	}
	fmt.Fprintf(out, "bench gate: %d workloads within %.0f%% of %s, all warm runs fully cached\n",
		len(base.Points), bench.SpeedupTolerance*100, basePath)
	return nil
}
