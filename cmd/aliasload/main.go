// Command aliasload drives an aliasd daemon with concurrent clients and
// reports latency/robustness statistics — the serving counterpart of
// benchtab. It runs up to three phases against one daemon:
//
//	cold   first-touch queries: clusters solve on demand, latency
//	       includes solves, shedding is allowed
//	warm   the same query set again: everything answers from solved
//	       engines; p99 here is the daemon's steady-state latency
//	chaos  fault injection armed (latency spikes + solve faults) and a
//	       live /reload fired mid-burst; every query must still come
//	       back 200-or-429, never 5xx, never past its deadline
//
// The report (BENCH_serve.json) carries per-phase p50/p90/p99/max, shed
// and degraded rates, and -assert turns invariant violations (any 5xx,
// any transport error, client/daemon counter drift) into a non-zero
// exit — the CI smoke gate.
//
// Usage:
//
//	aliasload -addr 127.0.0.1:7411 -clients 8 -n 50 \
//	          -phases cold,warm,chaos -out BENCH_serve.json -assert
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

var (
	addr       = flag.String("addr", "127.0.0.1:7411", "aliasd address (host:port)")
	clients    = flag.Int("clients", 8, "concurrent client goroutines")
	perClient  = flag.Int("n", 50, "queries per client per phase")
	phasesFlag = flag.String("phases", "cold,warm", "comma-separated phases to run: cold,warm,chaos")
	seed       = flag.Int64("seed", 1, "workload RNG seed (same seed = same query stream)")
	wait       = flag.Duration("wait", 30*time.Second, "how long to poll /readyz before giving up")
	out        = flag.String("out", "", "write the JSON report here (default stdout)")
	assert     = flag.Bool("assert", false, "exit non-zero when a robustness invariant fails (5xx, transport errors, counter drift)")
	warmP99Max = flag.Duration("warm-p99-max", 0, "with -assert: fail when the warm phase's p99 exceeds this (0 = no bound)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aliasload:", err)
		os.Exit(1)
	}
}

// Report is the emitted BENCH_serve.json.
type Report struct {
	Workload  string        `json:"workload"`
	Addr      string        `json:"addr"`
	Clients   int           `json:"clients"`
	PerClient int           `json:"queries_per_client"`
	Seed      int64         `json:"seed"`
	Phases    []PhaseReport `json:"phases"`
}

// PhaseReport aggregates one phase. Queries = OK + Degraded + Shed +
// Err4xx + Err5xx + NetErrors, always.
type PhaseReport struct {
	Name      string  `json:"name"`
	Queries   int     `json:"queries"`
	OK        int     `json:"ok"`       // 200, full precision
	Degraded  int     `json:"degraded"` // 200, fallback precision
	Shed      int     `json:"shed"`     // 429
	Err4xx    int     `json:"err_4xx"`  // other 4xx (client bugs)
	Err5xx    int     `json:"err_5xx"`  // must stay 0
	NetErrors int     `json:"net_errors"`
	Reloads   int     `json:"reloads,omitempty"` // live reloads fired (chaos)
	P50US     int64   `json:"p50_us"`
	P90US     int64   `json:"p90_us"`
	P99US     int64   `json:"p99_us"`
	MaxUS     int64   `json:"max_us"`
	QPS       float64 `json:"qps"`
	ElapsedMS int64   `json:"elapsed_ms"`
}

// newRand builds the deterministic workload RNG.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// query is one prebuilt request; the warm phase replays the cold set.
type query struct {
	path string
	body []byte
}

type result struct {
	status   int
	degraded bool
	elapsed  time.Duration
	netErr   bool
}

func run() error {
	base := "http://" + *addr
	hc := &http.Client{Timeout: 30 * time.Second}

	if err := waitReady(hc, base); err != nil {
		return err
	}
	var vars struct {
		Pointers   []string   `json:"pointers"`
		Partitions [][]string `json:"partitions"`
	}
	if err := getJSON(hc, base+"/v1/vars", &vars); err != nil {
		return fmt.Errorf("fetch vars: %w", err)
	}
	if len(vars.Pointers) < 2 {
		return fmt.Errorf("daemon reports %d covered pointers; nothing to query", len(vars.Pointers))
	}
	var info struct {
		Desc        string `json:"desc"`
		QueryTimeMS int64  `json:"query_timeout_ms"`
	}
	if err := getJSON(hc, base+"/v1/info", &info); err != nil {
		return fmt.Errorf("fetch info: %w", err)
	}

	// Deterministic per-client query streams. Mixing same-partition
	// pairs (can alias) with random pairs (mostly cannot) exercises both
	// the early-exit and the full-scan paths.
	rng := newRand(*seed)
	streams := make([][]query, *clients)
	for c := range streams {
		streams[c] = buildStream(rng, vars.Pointers, vars.Partitions, *perClient)
	}

	rep := &Report{
		Workload:  info.Desc,
		Addr:      *addr,
		Clients:   *clients,
		PerClient: *perClient,
		Seed:      *seed,
	}
	var failures []string
	for _, phase := range strings.Split(*phasesFlag, ",") {
		phase = strings.TrimSpace(phase)
		if phase == "" {
			continue
		}
		before, err := scrapeCounters(hc, base)
		if err != nil {
			return fmt.Errorf("scrape metrics: %w", err)
		}
		var pr PhaseReport
		switch phase {
		case "cold", "warm":
			pr = runPhase(phase, hc, base, streams, nil)
		case "chaos":
			pr = runChaos(hc, base, streams, rng)
		default:
			return fmt.Errorf("unknown phase %q", phase)
		}
		after, err := scrapeCounters(hc, base)
		if err != nil {
			return fmt.Errorf("scrape metrics: %w", err)
		}
		failures = append(failures, checkPhase(pr, before, after)...)
		rep.Phases = append(rep.Phases, pr)
	}

	if *warmP99Max > 0 {
		for _, pr := range rep.Phases {
			if pr.Name == "warm" && pr.P99US > warmP99Max.Microseconds() {
				failures = append(failures,
					fmt.Sprintf("warm p99 %dus exceeds bound %v", pr.P99US, *warmP99Max))
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("aliasload: report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "aliasload: INVARIANT:", f)
	}
	if *assert && len(failures) > 0 {
		return fmt.Errorf("%d robustness invariant(s) violated", len(failures))
	}
	return nil
}

// buildStream generates one client's deterministic query list.
func buildStream(rng *rand.Rand, pointers []string, partitions [][]string, n int) []query {
	qs := make([]query, 0, n)
	pick := func() string { return pointers[rng.Intn(len(pointers))] }
	for i := 0; i < n; i++ {
		switch {
		case rng.Intn(10) < 3: // 30% points-to
			body, _ := json.Marshal(map[string]any{"p": pick()})
			qs = append(qs, query{path: "/v1/pointsto", body: body})
		case len(partitions) > 0 && rng.Intn(2) == 0: // same-partition pair
			g := partitions[rng.Intn(len(partitions))]
			p, q := g[rng.Intn(len(g))], g[rng.Intn(len(g))]
			body, _ := json.Marshal(map[string]any{"p": p, "q": q})
			qs = append(qs, query{path: "/v1/mayalias", body: body})
		default: // random pair
			body, _ := json.Marshal(map[string]any{"p": pick(), "q": pick()})
			qs = append(qs, query{path: "/v1/mayalias", body: body})
		}
	}
	return qs
}

// runPhase fires every client's stream concurrently and aggregates.
// extra, when non-nil, runs concurrently with the burst (the chaos
// phase's live reload).
func runPhase(name string, hc *http.Client, base string, streams [][]query, extra func()) PhaseReport {
	results := make([][]result, len(streams))
	start := time.Now()
	var wg sync.WaitGroup
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rs := make([]result, 0, len(streams[c]))
			for _, q := range streams[c] {
				rs = append(rs, fire(hc, base, q))
			}
			results[c] = rs
		}(c)
	}
	if extra != nil {
		extra()
	}
	wg.Wait()
	elapsed := time.Since(start)

	pr := PhaseReport{Name: name, ElapsedMS: elapsed.Milliseconds()}
	var lats []time.Duration
	for _, rs := range results {
		for _, r := range rs {
			pr.Queries++
			switch {
			case r.netErr:
				pr.NetErrors++
			case r.status == http.StatusOK && r.degraded:
				pr.Degraded++
			case r.status == http.StatusOK:
				pr.OK++
			case r.status == http.StatusTooManyRequests:
				pr.Shed++
			case r.status >= 500:
				pr.Err5xx++
			default:
				pr.Err4xx++
			}
			if !r.netErr {
				lats = append(lats, r.elapsed)
			}
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) int64 {
			i := int(p * float64(len(lats)-1))
			return lats[i].Microseconds()
		}
		pr.P50US, pr.P90US, pr.P99US = pct(0.50), pct(0.90), pct(0.99)
		pr.MaxUS = lats[len(lats)-1].Microseconds()
	}
	if secs := elapsed.Seconds(); secs > 0 {
		pr.QPS = float64(pr.Queries) / secs
	}
	return pr
}

// runChaos arms fault injection (20% of queries spike, 20% of solve
// attempts fault), fires a live reload mid-burst, runs the burst, then
// disarms.
func runChaos(hc *http.Client, base string, streams [][]query, rng *rand.Rand) PhaseReport {
	arm := map[string]any{
		"latency_every":     5,
		"latency_ms":        100,
		"solve_fault_every": 5,
		"solve_fault_kind":  "budget",
		"reload_pause_ms":   50,
	}
	_ = postJSON(hc, base+"/chaos", arm, nil)
	reloads := 0
	pr := runPhase("chaos", hc, base, streams, func() {
		// Mid-burst: swap the program under live traffic. variant 1
		// regenerates the workload with extra salt, so the swap is real.
		time.Sleep(50 * time.Millisecond)
		var rr struct {
			Snapshot int64 `json:"snapshot"`
		}
		if err := postJSON(hc, base+"/reload", map[string]any{"variant": rng.Intn(1000) + 1}, &rr); err == nil && rr.Snapshot > 0 {
			reloads++
		}
	})
	pr.Reloads = reloads
	_ = postJSON(hc, base+"/chaos", map[string]any{}, nil) // disarm
	return pr
}

// fire sends one query.
func fire(hc *http.Client, base string, q query) result {
	start := time.Now()
	resp, err := hc.Post(base+q.path, "application/json", bytes.NewReader(q.body))
	if err != nil {
		return result{netErr: true, elapsed: time.Since(start)}
	}
	defer resp.Body.Close()
	var body struct {
		Degraded bool `json:"degraded"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return result{status: resp.StatusCode, degraded: body.Degraded, elapsed: time.Since(start)}
}

// counters is the subset of daemon metrics the invariants check.
type counters struct {
	queries, degraded, shed int64
}

// scrapeCounters parses the Prometheus text endpoint.
func scrapeCounters(hc *http.Client, base string) (counters, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return counters{}, err
	}
	defer resp.Body.Close()
	var c counters
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "aliasd_queries_total":
			c.queries = int64(v)
		case "aliasd_degraded_total":
			c.degraded = int64(v)
		case "aliasd_shed_total":
			c.shed = int64(v)
		}
	}
	return c, sc.Err()
}

// checkPhase verifies the robustness invariants for one phase, assuming
// this process is the daemon's only client (true in the smoke harness).
func checkPhase(pr PhaseReport, before, after counters) []string {
	var bad []string
	if pr.Err5xx > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d 5xx responses", pr.Name, pr.Err5xx))
	}
	if pr.NetErrors > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d transport errors", pr.Name, pr.NetErrors))
	}
	if pr.Err4xx > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d unexpected 4xx responses", pr.Name, pr.Err4xx))
	}
	if got := pr.OK + pr.Degraded + pr.Shed + pr.Err4xx + pr.Err5xx + pr.NetErrors; got != pr.Queries {
		bad = append(bad, fmt.Sprintf("%s: outcome counts sum to %d, queries %d", pr.Name, got, pr.Queries))
	}
	if d := after.shed - before.shed; d != int64(pr.Shed) {
		bad = append(bad, fmt.Sprintf("%s: daemon shed delta %d, client saw %d", pr.Name, d, pr.Shed))
	}
	if d := after.degraded - before.degraded; d != int64(pr.Degraded) {
		bad = append(bad, fmt.Sprintf("%s: daemon degraded delta %d, client saw %d", pr.Name, d, pr.Degraded))
	}
	if d := after.queries - before.queries; d != int64(pr.OK+pr.Degraded) {
		bad = append(bad, fmt.Sprintf("%s: daemon served delta %d, client completed %d", pr.Name, d, pr.OK+pr.Degraded))
	}
	return bad
}

func waitReady(hc *http.Client, base string) error {
	deadline := time.Now().Add(*wait)
	for {
		resp, err := hc.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not ready after %v", *addr, *wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getJSON(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func postJSON(hc *http.Client, url string, body any, v any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
