package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/obs"
	"bootstrap/internal/serve"
	"bootstrap/internal/synth"
)

func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

// startDaemon boots an in-process aliasd-equivalent on an ephemeral port.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	b, ok := synth.FindBenchmark("sock")
	if !ok {
		t.Fatal("no sock benchmark")
	}
	src := synth.Generate(b, 0.05)
	s := serve.New(serve.Config{
		Analysis: core.Config{
			Mode:              core.ModeAndersen,
			Workers:           2,
			AndersenThreshold: 2,
		},
		QueryTimeout: time.Second,
		AllowChaos:   true,
		Metrics:      obs.NewMetrics(),
		Regen: func(variant int) (string, string, error) {
			salt := fmt.Sprintf("\nint lv_obj_%d;\nint *lv_ptr_%d;\nvoid lv_f_%d() { lv_ptr_%d = &lv_obj_%d; }\n",
				variant, variant, variant, variant, variant)
			return fmt.Sprintf("synth:sock+v%d", variant), src + salt, nil
		},
	})
	if _, err := s.Load(context.Background(), "synth:sock", src); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestLoadDriverAllPhases(t *testing.T) {
	ts := startDaemon(t)
	outPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	resetFlags()
	for k, v := range map[string]string{
		"addr":    strings.TrimPrefix(ts.URL, "http://"),
		"clients": "4",
		"n":       "25",
		"phases":  "cold,warm,chaos",
		"out":     outPath,
		"assert":  "true",
	} {
		if err := flag.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(); err != nil {
		t.Fatalf("aliasload run: %v", err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bad report %s: %v", blob, err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(rep.Phases))
	}
	for i, name := range []string{"cold", "warm", "chaos"} {
		pr := rep.Phases[i]
		if pr.Name != name {
			t.Errorf("phase %d = %q, want %q", i, pr.Name, name)
		}
		if pr.Queries != 4*25 {
			t.Errorf("%s: %d queries, want 100", name, pr.Queries)
		}
		if pr.Err5xx != 0 || pr.NetErrors != 0 {
			t.Errorf("%s: %d 5xx, %d net errors", name, pr.Err5xx, pr.NetErrors)
		}
	}
	warm := rep.Phases[1]
	if warm.Shed != 0 {
		t.Errorf("warm phase shed %d queries; warm queries must bypass admission", warm.Shed)
	}
	chaos := rep.Phases[2]
	if chaos.Reloads == 0 {
		t.Errorf("chaos phase fired no live reload")
	}
}

func TestBuildStreamDeterministic(t *testing.T) {
	ptrs := []string{"a", "b", "c", "d"}
	parts := [][]string{{"a", "b"}, {"c", "d"}}
	s1 := buildStream(newRand(7), ptrs, parts, 20)
	s2 := buildStream(newRand(7), ptrs, parts, 20)
	if len(s1) != 20 || len(s2) != 20 {
		t.Fatalf("stream lengths %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].path != s2[i].path || string(s1[i].body) != string(s2[i].body) {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}
