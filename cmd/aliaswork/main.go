// Command aliaswork is a standalone shard worker for the distributed
// eager solve: point it at a coordinator (bootstrap -shards or
// benchtab -shards serve one, and so does any process embedding
// dist.NewCoordinator) and it joins the fleet, claims clusters, solves
// them with the full cascade engine, and publishes results through the
// shared content-addressed cache until the queue drains.
//
// Usage:
//
//	aliaswork -coordinator http://127.0.0.1:7777 [-name w1]
//
// The coordinator URL may also come from the BOOTSTRAP_DIST_WORKER
// environment variable — the same contract under which bootstrap and
// benchtab re-exec themselves as workers — so aliaswork works both as
// a hand-started second terminal and as a drop-in spawned child.
//
// Exit status: 0 when the queue drained, 1 on protocol or analysis
// errors, 7 when an injected kill fault fired (test fleets only).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"bootstrap/internal/dist"
)

var (
	coordinator = flag.String("coordinator", "", "coordinator base URL (http://host:port); defaults to $BOOTSTRAP_DIST_WORKER")
	name        = flag.String("name", "", "worker name in leases and reports (default: derived from the PID)")
	verbose     = flag.Bool("v", false, "print the worker's claim/steal summary on exit")
)

func main() {
	dist.MaybeWorker() // env-spawned mode: never returns when armed
	flag.Parse()
	url := *coordinator
	if url == "" {
		url = os.Getenv("BOOTSTRAP_DIST_WORKER")
	}
	if url == "" {
		fmt.Fprintln(os.Stderr, "usage: aliaswork -coordinator http://host:port")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(url, *name, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "aliaswork:", err)
		os.Exit(1)
	}
}

// run is the worker session: join, drain, optionally summarize.
func run(url, name string, verbose bool) error {
	stats, err := dist.RunWorker(context.Background(), dist.WorkerOptions{
		Coordinator: url,
		Name:        name,
	})
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("aliaswork: shard=%d claimed=%d stolen=%d completed=%d busy=%dns\n",
			stats.Shard, stats.Claimed, stats.Stolen, stats.Completed, stats.BusyNS)
	}
	return nil
}
