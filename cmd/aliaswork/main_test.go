package main

import (
	"context"
	"testing"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
	"bootstrap/internal/dist"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

// TestWorkerDrainsCoordinator is the binary's smoke test: a hand-run
// aliaswork session (the two-terminal workflow) must drain a live
// coordinator's queue and publish importable results.
func TestWorkerDrainsCoordinator(t *testing.T) {
	b, ok := synth.FindBenchmark("sock")
	if !ok {
		t.Fatal("sock benchmark missing")
	}
	src := synth.Generate(b, 0.1)
	cfg := core.Config{Mode: core.ModeAndersen, Workers: 1}
	prog, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.BuildPlan(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	coord, err := dist.NewCoordinator(pl, src, dist.Options{
		Shards:   1,
		CacheDir: cacheDir,
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if err := run(coord.Addr(), "smoke", true); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}
	r := coord.Report()
	if r.Items == 0 || r.Completed != r.Items {
		t.Fatalf("worker completed %d/%d items", r.Completed, r.Items)
	}

	// The published results must import: the merge pass sees cache hits.
	mcfg := cfg
	mcfg.Cache = cache.New(cache.Options{Dir: cacheDir})
	a, err := core.AnalyzeFromPlan(context.Background(), pl, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheStats.Hits == 0 {
		t.Fatalf("merge pass imported nothing: %+v", a.CacheStats)
	}
}

// TestWorkerRejectsUnreachableCoordinator covers the error path a
// mistyped URL takes.
func TestWorkerRejectsUnreachableCoordinator(t *testing.T) {
	if err := run("http://127.0.0.1:1", "smoke", false); err == nil {
		t.Fatal("worker connected to nothing")
	}
}
