// Command aliasd is the alias-query daemon: it loads a CPL program (or a
// synthesized Table 1 workload) once, bootstraps the cascade lazily, and
// serves MayAlias / PointsTo / Lockset queries over HTTP/JSON. Clusters
// solve on first touch; repeat queries are answered from solved engines
// in microseconds.
//
// Usage:
//
//	aliasd [flags] program.cpl
//	aliasd -synth autofs -synth-scale 0.12 [flags]
//
// Endpoints (see internal/serve):
//
//	POST /v1/mayalias {"p":"x","q":"y","at":"main"}
//	POST /v1/pointsto {"p":"x"}
//	POST /v1/lockset  {}
//	POST /check       {"pass":"lockset"}  run a checker pass (lockset,
//	                  deadlock, nullcheck, uaf) against the live snapshot;
//	                  findings carry aliaslint fingerprints + snapshot id
//	GET  /v1/info     GET /v1/vars
//	POST /reload      {"source": "..."} or {"variant": 3} (re-reads the
//	                  program file / re-synthesizes the workload)
//	POST /edit        {"edits":[{"action":"replace","loc":41,...}]} apply
//	                  an edit batch incrementally: only dirty clusters
//	                  re-solve, the rest of the snapshot is reused
//	GET  /subscribe   SSE stream of snapshot/cluster/invalidate events
//	POST /chaos       (with -chaos) arm deterministic fault injection
//	GET  /healthz     GET /readyz
//	GET  /metrics     /debug/vars  /debug/pprof/*  (with -trace/-metrics flags or by default registry)
//
// Robustness: queries carry a deadline (-query-timeout) and degrade to
// the flow-insensitive answer instead of erroring; cold queries beyond
// -queue-depth waiting are shed with 429 + Retry-After; /reload swaps
// program snapshots atomically under live traffic; SIGTERM drains
// gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bootstrap/internal/cliutil"
	"bootstrap/internal/obs"
	"bootstrap/internal/serve"
	"bootstrap/internal/synth"
)

var (
	analysisFlags cliutil.AnalysisFlags
	obsFlags      cliutil.ObsFlags

	addr         = flag.String("addr", "127.0.0.1:7411", "address to serve the query API on")
	synthName    = flag.String("synth", "", "serve a synthesized Table 1 workload (e.g. autofs) instead of a program file")
	synthScale   = flag.Float64("synth-scale", 0.12, "scale factor for -synth (1.0 = paper-sized)")
	queryTimeout = flag.Duration("query-timeout", 2*time.Second, "per-query deadline; on expiry the answer degrades to the flow-insensitive fallback")
	editTimeout  = flag.Duration("edit-timeout", 15*time.Second, "per-edit-batch deadline for POST /edit; on expiry the batch is rejected and the old snapshot keeps serving")
	queueDepth   = flag.Int("queue-depth", 64, "cold queries allowed to wait for a solve slot before shedding with 429")
	maxSolves    = flag.Int("max-solves", 0, "concurrent cluster solves (0 = GOMAXPROCS)")
	drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound after SIGTERM/SIGINT")
	chaos        = flag.Bool("chaos", false, "mount POST /chaos for runtime fault injection (latency spikes, solve faults, reload pauses)")
)

func init() {
	analysisFlags.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
}

// onListen, when non-nil, receives the bound listen address — tests use
// it with -addr 127.0.0.1:0 to find the ephemeral port.
var onListen func(net.Addr)

func main() {
	flag.Parse()
	if (*synthName == "") == (flag.NArg() != 1) {
		fmt.Fprintln(os.Stderr, "usage: aliasd [flags] program.cpl | aliasd -synth <name> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), nil); err != nil {
		fmt.Fprintln(os.Stderr, "aliasd:", err)
		os.Exit(1)
	}
}

// variantSource salts a synthesized program with variant k: extra
// globals plus a function wiring them up, so successive reloads really
// produce different programs (new variables, new partitions) while the
// base workload's queries keep their meaning.
func variantSource(src string, k int) string {
	if k <= 0 {
		return src
	}
	return src + fmt.Sprintf(
		"\nint chaos_obj_%d;\nint *chaos_ptr_%d;\nvoid chaos_variant_%d() {\n\tchaos_ptr_%d = &chaos_obj_%d;\n}\n",
		k, k, k, k, k)
}

// loadSource resolves the program the daemon serves: a synthesized
// workload (salted by variant) or the program file re-read from disk.
func loadSource(path string, variant int) (desc, src string, err error) {
	if *synthName != "" {
		if src, _, ok := synth.LockHeavyByName(*synthName); ok {
			desc = "synth:" + *synthName
			if variant > 0 {
				desc = fmt.Sprintf("%s+v%d", desc, variant)
			}
			return desc, variantSource(src, variant), nil
		}
		b, ok := synth.FindBenchmark(*synthName)
		if !ok {
			return "", "", fmt.Errorf("unknown -synth benchmark %q", *synthName)
		}
		desc = fmt.Sprintf("synth:%s@%.2g", *synthName, *synthScale)
		if variant > 0 {
			desc = fmt.Sprintf("%s+v%d", desc, variant)
		}
		return desc, variantSource(synth.Generate(b, *synthScale), variant), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	desc = path
	if variant > 0 {
		desc = fmt.Sprintf("%s+v%d", path, variant)
	}
	return desc, variantSource(string(raw), variant), nil
}

// run boots the daemon and serves until SIGTERM/SIGINT (or stop closes,
// in tests). It returns after the graceful drain.
func run(path string, stop <-chan struct{}) (err error) {
	acfg, err := analysisFlags.Config()
	if err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()

	// The daemon always has a metrics registry — /metrics is part of its
	// own API surface — and shares it with the -metrics-addr debug
	// server when that flag is on.
	metrics := sess.Metrics
	if metrics == nil {
		metrics = obs.NewMetrics()
	}

	s := serve.New(serve.Config{
		Analysis:     acfg,
		QueryTimeout: *queryTimeout,
		EditTimeout:  *editTimeout,
		QueueDepth:   *queueDepth,
		MaxSolves:    *maxSolves,
		DrainTimeout: *drainTimeout,
		AllowChaos:   *chaos,
		Metrics:      metrics,
		Tracer:       sess.Tracer,
		Regen:        func(variant int) (string, string, error) { return loadSource(path, variant) },
	})

	desc, src, err := loadSource(path, 0)
	if err != nil {
		return err
	}
	t0 := time.Now()
	sn, err := s.Load(context.Background(), desc, src)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Printf("aliasd: serving %s on http://%s (%d vars, %d clusters, loaded in %v)\n",
		sn.Desc, ln.Addr(), sn.Prog.NumVars(), len(sn.A.Clusters), time.Since(t0).Round(time.Millisecond))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case got := <-sig:
		fmt.Printf("aliasd: %v, draining (timeout %v)\n", got, *drainTimeout)
	case <-stop:
		fmt.Printf("aliasd: stop requested, draining (timeout %v)\n", *drainTimeout)
	}
	// Graceful drain: readiness flips off (load balancers stop routing),
	// in-flight requests finish, then the listener closes.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("aliasd: drained")
	return nil
}
