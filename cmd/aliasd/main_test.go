package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// resetFlags restores this command's flags (not the test framework's) to
// their defaults between runs.
func resetFlags() {
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if !strings.HasPrefix(f.Name, "test.") {
			_ = f.Value.Set(f.DefValue)
		}
	})
}

// boot starts the daemon on an ephemeral port and returns its base URL
// plus a stop function that triggers the graceful drain and waits for
// run to return.
func boot(t *testing.T, path string) (base string, stopAndWait func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	onListen = func(a net.Addr) { addrCh <- a.String() }
	t.Cleanup(func() { onListen = nil })
	if err := flag.Set("addr", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- run(path, stop) }()
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-errCh:
		t.Fatalf("daemon exited during boot: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its listener")
	}
	return base, func() error {
		close(stop)
		select {
		case err := <-errCh:
			return err
		case <-time.After(30 * time.Second):
			return nil // leak the goroutine rather than hang the test
		}
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonSmokeOnDriver(t *testing.T) {
	resetFlags()
	base, stop := boot(t, "../../testdata/driver.cpl")
	waitReady(t, base)

	body := bytes.NewReader([]byte(`{"p":"dev.state","q":"dev.owner"}`))
	resp, err := http.Post(base+"/v1/mayalias", "application/json", body)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var qr struct {
		MayAlias *bool `json:"may_alias"`
		Snapshot int64 `json:"snapshot"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.MayAlias == nil || qr.Snapshot != 1 {
		t.Fatalf("bad query response: %+v", qr)
	}

	// /reload without a body source re-reads the program file.
	resp, err = http.Post(base+"/reload", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDaemonSmokeOnSynth(t *testing.T) {
	resetFlags()
	for k, v := range map[string]string{
		"synth":       "sock",
		"synth-scale": "0.05",
		"chaos":       "true",
	} {
		if err := flag.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	base, stop := boot(t, "")
	waitReady(t, base)

	var vars struct {
		Pointers []string `json:"pointers"`
	}
	resp, err := http.Get(base + "/v1/vars")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(vars.Pointers) < 2 {
		t.Fatalf("synth workload exposes %d pointers", len(vars.Pointers))
	}
	body := []byte(`{"p":"` + vars.Pointers[0] + `","q":"` + vars.Pointers[1] + `"}`)
	resp, err = http.Post(base+"/v1/mayalias", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synth query status %d", resp.StatusCode)
	}

	// Synth regeneration with a variant: the reload must succeed and
	// bump the snapshot.
	resp, err = http.Post(base+"/reload", "application/json", strings.NewReader(`{"variant":7}`))
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Snapshot int64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Snapshot != 2 {
		t.Fatalf("variant reload: status %d snapshot %d", resp.StatusCode, rr.Snapshot)
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestVariantSource(t *testing.T) {
	base := "void main() { }\n"
	if got := variantSource(base, 0); got != base {
		t.Errorf("variant 0 changed the source")
	}
	v1, v2 := variantSource(base, 1), variantSource(base, 2)
	if v1 == base || v1 == v2 {
		t.Errorf("variants not distinct")
	}
}
