GO ?= go

# staticcheck is version-pinned so `make lint` (and therefore `make
# check`) runs the exact binary CI runs — a lint disagreement between a
# laptop and a runner is always a version skew bug. `go run` fetches it
# on first use and caches it in the module cache.
STATICCHECK_VERSION ?= 2024.1.1

# The workload slice the bench gate measures: small enough for CI, wide
# enough to cover every cascade stage.
BENCH_ROWS    = sock,ctrace,autofs,raid,mt_daapd
BENCH_SCALE   = 0.12
BENCHTAB_ARGS = -rows $(BENCH_ROWS) -scale $(BENCH_SCALE) -cache-dir .benchcache

# The serve bench boots a chaos-enabled aliasd on a synthetic workload
# and drives it with aliasload (cold, warm, then chaos: 20% injected
# faults + a live reload mid-burst). -assert fails on any 5xx, counter
# drift, or a warm-phase shed.
SERVE_ADDR  = 127.0.0.1:7411
SERVE_BENCH = sock

# The shard bench distributes the eager solve across worker processes
# and gates on the coordinator's accounting: every cluster completed,
# results bit-identical to a single-process solve, the eager-phase
# speedup floor held, and work stealing never behind static binning.
SHARD_ROWS  = autofs
SHARD_SCALE = 0.5

.PHONY: all build test race vet fmt staticcheck lint check bench bench-baseline serve-bench shard-bench shard-baseline checker-bench checker-baseline incremental-bench incremental-baseline examples

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# lint is CI's lint job: formatting, vet and the pinned staticcheck.
lint: fmt vet staticcheck

# check is what CI runs: lint, build, and the full suite under the race
# detector.
check: lint build race

# bench smoke-runs every benchmark once (catching bit-rot without the
# cost of real measurement), measures the FSCS perf trajectory into
# BENCH_fresh.json, and gates it against the committed BENCH_fscs.json.
# benchtab runs twice against the same cache directory: the first run is
# cold (cache_hit_rate 0.0) and populates it, the second must start
# fully warm (cache_hit_rate 1.0) — the gate asserts exactly that on the
# second run's JSON, plus that no machine-independent speedup ratio fell
# more than 15% below the baseline's.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -count=1 -benchmem ./...
	rm -rf .benchcache
	$(GO) run ./cmd/benchtab $(BENCHTAB_ARGS) -fscs-json BENCH_fresh.json
	$(GO) run ./cmd/benchtab $(BENCHTAB_ARGS) -fscs-json BENCH_fresh.json
	$(GO) run ./cmd/benchtab -assert -baseline BENCH_fscs.json -fresh BENCH_fresh.json

# bench-baseline re-measures and promotes the fresh report to the
# committed baseline — run it (and commit the result) when a PR changes
# the performance shape on purpose.
bench-baseline: bench
	mv BENCH_fresh.json BENCH_fscs.json

# shard-bench is CI's distributed-execution gate: a fresh 2-shard
# work-stealing run (real worker processes over the shared result
# cache) on one large workload, asserted for completion, bit-identity
# and the speedup/steal floors. Cheap enough for every push.
shard-bench:
	$(GO) run ./cmd/benchtab -rows $(SHARD_ROWS) -scale $(SHARD_SCALE) -shards 2 -assert

# shard-baseline re-measures the committed BENCH_shard.json: the full
# shards 1/2/4/8 × steal/greedy sweep over the four large workloads.
shard-baseline:
	$(GO) run ./cmd/benchtab -scale $(SHARD_SCALE) -shard-json BENCH_shard.json -assert

# checker-bench is CI's static-analysis gate: every lockheavy preset
# runs every registered pass cold then warm, and the fresh report is
# asserted for full seeded-bug recall, zero cold/warm findings drift, a
# fully-cached warm rerun, and per-rule findings counts equal to the
# committed BENCH_check.json.
checker-bench:
	$(GO) run ./cmd/benchtab -check -assert -baseline BENCH_check.json

# checker-baseline re-measures and commits the checker baseline — run
# it when a PR changes what the passes find on purpose.
checker-baseline:
	$(GO) run ./cmd/benchtab -check -check-json BENCH_check.json

# incremental-bench is CI's streaming-mode gate: a deterministic storm
# of single-statement edits per workload through core.ApplyEdit, with
# every edit timed edit-to-answer and every Nth edited program
# differentially checked against a from-scratch analysis. The fresh
# report is asserted for the p50 latency budget, the dirty-cluster
# reuse floor, zero fallbacks, identity, and workload-set equality with
# the committed BENCH_incremental.json.
incremental-bench:
	$(GO) run ./cmd/benchtab -incremental -scale $(BENCH_SCALE) -incr-json BENCH_incr_fresh.json -assert -baseline BENCH_incremental.json

# incremental-baseline re-measures and commits the incremental baseline
# — run it when a PR changes the edit path's shape on purpose.
incremental-baseline:
	$(GO) run ./cmd/benchtab -incremental -scale $(BENCH_SCALE) -incr-json BENCH_incremental.json

# examples builds and runs every examples/ binary — the consumer-facing
# API smoke test. Each example must exit 0.
examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
	done

# serve-bench measures (and refreshes) BENCH_serve.json: boot the
# daemon in the background, let aliasload wait for /readyz, run the
# three phases, then drain the daemon with SIGTERM. The daemon's exit
# status is checked too — a crash under chaos fails the target even if
# the driver's invariants all passed.
serve-bench:
	$(GO) build -o .bin/aliasd ./cmd/aliasd
	$(GO) build -o .bin/aliasload ./cmd/aliasload
	@./.bin/aliasd -addr $(SERVE_ADDR) -synth $(SERVE_BENCH) -synth-scale $(BENCH_SCALE) -chaos & \
	pid=$$!; status=0; \
	./.bin/aliasload -addr $(SERVE_ADDR) -phases cold,warm,chaos -assert -out BENCH_serve.json || status=$$?; \
	kill -TERM $$pid 2>/dev/null; \
	wait $$pid || status=$$?; \
	exit $$status
