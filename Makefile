GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem ./...
