GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race

# bench smoke-runs every benchmark once (catching bit-rot without the
# cost of real measurement) and regenerates the BENCH_fscs.json perf
# trajectory that CI uploads as an artifact. benchtab runs twice against
# the same cache directory: the first run is cold (cache_hit_rate 0.0)
# and populates it, the second must start fully warm (cache_hit_rate
# 1.0) — CI asserts exactly that on the second run's JSON.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -count=1 -benchmem ./...
	rm -rf .benchcache
	$(GO) run ./cmd/benchtab -rows sock,ctrace,autofs,raid,mt_daapd -scale 0.12 -cache-dir .benchcache -fscs-json BENCH_fscs.json
	$(GO) run ./cmd/benchtab -rows sock,ctrace,autofs,raid,mt_daapd -scale 0.12 -cache-dir .benchcache -fscs-json BENCH_fscs.json
