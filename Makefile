GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet, build, and the full suite under the race
# detector.
check: vet build race

# bench smoke-runs every benchmark once (catching bit-rot without the
# cost of real measurement) and regenerates the BENCH_fscs.json perf
# trajectory that CI uploads as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -count=1 -benchmem ./...
	$(GO) run ./cmd/benchtab -rows sock,ctrace,autofs,raid,mt_daapd -scale 0.12 -fscs-json BENCH_fscs.json
