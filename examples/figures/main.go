// Figures: reproduces the paper's illustrative examples (Figures 2–5),
// printing exactly the objects the paper derives from each — the
// Steensgaard-vs-Andersen points-to contrast, Algorithm 1's statement
// slicing, maximally complete update sequences, and the worked summary
// tuples.
//
//	go run ./examples/figures
package main

import (
	"fmt"
	"log"
	"strings"

	"bootstrap/internal/andersen"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

func main() {
	figure2()
	figure3()
	figure4()
	figure5()
}

func names(p *ir.Program, vs []ir.VarID, keep func(string) bool) string {
	var out []string
	for _, v := range vs {
		if n := p.VarName(v); keep(n) {
			out = append(out, n)
		}
	}
	return "{" + strings.Join(out, ", ") + "}"
}

func isUser(n string) bool { return !strings.Contains(n, ".") && !strings.Contains(n, "@") }

// figure2: p=&a; q=&b; r=&c; q=p; q=r — Steensgaard unifies, Andersen
// keeps direction.
func figure2() {
	fmt.Println("== Figure 2: Steensgaard vs Andersen points-to ==")
	prog, err := frontend.LowerSource(`
		int a, b, c;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = &b;
			r = &c;
			q = p;
			q = r;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}
	sa := steens.Analyze(prog)
	aa := andersen.Analyze(prog)
	for _, name := range []string{"p", "q", "r"} {
		v := prog.VarByName[name]
		fmt.Printf("  %s: steensgaard pts %-12s andersen pts %s\n", name,
			names(prog, sa.PointsToVars(v), isUser),
			names(prog, aa.PointsTo(v), isUser))
	}
	fmt.Println("  (Andersen's q has out-degree 3 while p and r stay exact;")
	fmt.Println("   Steensgaard's partitions are {p,q,r} and {a,b,c})")
	fmt.Println()
}

// figure3: Algorithm 1 keeps 1a,2a,4a for P={a,b} and discards 3a: p=x.
func figure3() {
	fmt.Println("== Figure 3: Algorithm 1 relevant statements for P={a,b} ==")
	prog, err := frontend.LowerSource(`
		int a, b;
		int *x, *y, *p;
		void main() {
			x = &a;
			y = &b;
			p = x;
			*x = *y;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}
	sa := steens.Analyze(prog)
	P := []ir.VarID{prog.VarByName["a"], prog.VarByName["b"]}
	vars, stmts := cluster.RelevantStatements(prog, sa, P)
	fmt.Printf("  V_P  = %s\n", names(prog, vars, isUser))
	fmt.Println("  St_P =")
	for _, loc := range stmts {
		fmt.Printf("    L%-3d %s\n", loc, prog.StmtString(loc))
	}
	fmt.Println("  (note: 3a `p = x` is excluded — it cannot affect aliases of a or b)")
	fmt.Println()
}

// figure4: [4a] is a complete update sequence from b to a; its maximal
// completion is [1a, 4a], from c to a.
func figure4() {
	fmt.Println("== Figure 4: maximally complete update sequences ==")
	prog, err := frontend.LowerSource(`
		int *a, *b, *c;
		int **x, **y;
		void main() {
			b = c;
			x = &a;
			y = &b;
			*x = b;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}
	sa := steens.Analyze(prog)
	cg := callgraph.Build(prog)
	whole := cluster.BuildWhole(prog, sa)
	eng := fscs.NewEngine(prog, cg, sa, whole)
	exit := prog.Func(prog.Entry).Exit
	fmt.Println("  summary sources for a at main's exit:")
	for _, tup := range eng.SummaryAt(exit, prog.VarByName["a"]) {
		fmt.Printf("    %s\n", tup.Format(prog))
	}
	fmt.Println("  (the sequence terminates at c — [4a] alone would stop at b,")
	fmt.Println("   but 1a: b = c extends it to the maximal completion [1a,4a])")
	fmt.Println()
}

// figure5: the worked summary example — foo's tuple (x, 3b, w, true),
// main's spliced tuple (z, 6a, u, true), and bar requiring no P1 summary.
func figure5() {
	fmt.Println("== Figure 5: summary computation ==")
	prog, err := frontend.LowerSource(`
		int **x, **u, **w, **z;
		int *d;
		int *c;
		int *a, *b;
		void foo() {
			*x = d;
			a = b;
			x = w;
		}
		void bar() {
			*x = d;
			a = b;
		}
		void main() {
			x = &c;
			w = u;
			foo();
			z = x;
			*z = b;
			bar();
		}
	`)
	if err != nil {
		log.Fatal(err)
	}
	sa := steens.Analyze(prog)
	cg := callgraph.Build(prog)
	whole := cluster.BuildWhole(prog, sa)
	eng := fscs.NewEngine(prog, cg, sa, whole)

	p1 := sa.PartitionOf(prog.VarByName["x"])
	fmt.Printf("  P1 = %s\n", names(prog, p1, isUser))

	foo, bar := prog.FuncByName["foo"], prog.FuncByName["bar"]
	fmt.Println("  Summary(foo, x):")
	for _, tup := range eng.Summary(foo, prog.VarByName["x"]) {
		fmt.Printf("    %s   // the paper's (x, 3b, w, true)\n", tup.Format(prog))
	}
	modifies := false
	for _, v := range p1 {
		if eng.Modifies(bar, v) {
			modifies = true
		}
	}
	fmt.Printf("  bar modifies P1 pointers: %v  (so no P1 summaries for bar)\n", modifies)

	exit := prog.Func(prog.Entry).Exit
	fmt.Println("  SummaryAt(main exit, z):")
	for _, tup := range eng.SummaryAt(exit, prog.VarByName["z"]) {
		fmt.Printf("    %s   // the paper's (z, 6a, u, true): w=u, [x=w], z=x\n", tup.Format(prog))
	}
}
