// Racedetect: the paper's motivating application — static data-race
// detection for driver-style code via lockset computation, using the
// demand-driven mode that analyzes only clusters containing lock pointers.
//
//	go run ./examples/racedetect
package main

import (
	"fmt"
	"log"

	"bootstrap/internal/core"
	"bootstrap/internal/lockset"
)

// driver models a device driver with two concurrent entry points: the
// device state is protected by dev_lock, the statistics counter is
// protected in open but NOT in ioctl (a seeded bug), and the debug flag is
// entirely unprotected.
const driver = `
	lock dev_lock;
	lock stats_lock;
	lock *lp;
	lock *sp;

	int dev_state;
	int stats;
	int debug_flag;

	void acquire(lock *l) { }
	void release(lock *l) { }

	void update_stats() {
		stats = stats + 1;
	}

	void thread_open() {
		lp = &dev_lock;
		sp = &stats_lock;
		acquire(lp);
		dev_state = 1;
		release(lp);
		acquire(sp);
		update_stats();
		release(sp);
		debug_flag = 1;
	}

	void thread_ioctl() {
		lp = &dev_lock;
		acquire(lp);
		dev_state = 2;
		release(lp);
		update_stats();      // BUG: stats_lock not held
		debug_flag = 0;
	}

	void main() {
		thread_open();
		thread_ioctl();
	}
`

func main() {
	// Demand-driven bootstrap: only clusters containing lock pointers get
	// the precise flow- and context-sensitive treatment ("since a lock
	// pointer can alias only to another lock pointer, we need to consider
	// clusters comprised solely of lock pointers").
	analysis, err := core.AnalyzeSource(driver, core.Config{
		Mode:   core.ModeAndersen,
		Demand: lockset.LockDemand,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d of %d clusters (lock clusters only)\n",
		len(analysis.Timing.PerCluster), len(analysis.Clusters))

	det := lockset.NewDetector(analysis, lockset.Config{})
	races, accesses := det.Detect()

	fmt.Printf("threads: %d entry points, %d shared accesses\n\n",
		len(det.Threads()), len(accesses))
	if len(races) == 0 {
		fmt.Println("no races found")
		return
	}
	fmt.Printf("%d potential races:\n", len(races))
	reported := map[string]bool{}
	for _, r := range races {
		v := analysis.Prog.VarName(r.Var)
		if reported[v] {
			continue // one report per variable for readability
		}
		reported[v] = true
		fmt.Println("  " + r.Format(analysis.Prog))
	}
	fmt.Println("\nexpected: races on stats (ioctl skips stats_lock) and on")
	fmt.Println("debug_flag (never protected); dev_state is race-free.")
}
