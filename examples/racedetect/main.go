// Racedetect: the paper's motivating application — static data-race
// detection for driver-style code — written as a client of the checker
// framework (internal/check). The framework picks the demand predicate
// from the passes' declared footprints, so only clusters the checkers
// actually query get the precise flow- and context-sensitive treatment,
// and every finding carries a stable fingerprint suitable for baseline
// suppression (see cmd/aliaslint).
//
//	go run ./examples/racedetect
package main

import (
	"context"
	"fmt"
	"log"

	"bootstrap/internal/check"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
)

// driver models a device driver with two concurrent entry points: the
// device state is protected by dev_lock, the statistics counter is
// protected in open but NOT in ioctl (a seeded bug), and the debug flag is
// entirely unprotected.
const driver = `
	lock dev_lock;
	lock stats_lock;
	lock *lp;
	lock *sp;

	int dev_state;
	int stats;
	int debug_flag;

	void acquire(lock *l) { }
	void release(lock *l) { }

	void update_stats() {
		stats = stats + 1;
	}

	void thread_open() {
		lp = &dev_lock;
		sp = &stats_lock;
		acquire(lp);
		dev_state = 1;
		release(lp);
		acquire(sp);
		update_stats();
		release(sp);
		debug_flag = 1;
	}

	void thread_ioctl() {
		lp = &dev_lock;
		acquire(lp);
		dev_state = 2;
		release(lp);
		update_stats();      // BUG: stats_lock not held
		debug_flag = 0;
	}

	void main() {
		thread_open();
		thread_ioctl();
	}
`

func main() {
	prog, err := frontend.LowerSource(driver)
	if err != nil {
		log.Fatal(err)
	}

	// The race and deadlock passes both declare a lock-pointer footprint
	// ("since a lock pointer can alias only to another lock pointer, we
	// need to consider clusters comprised solely of lock pointers"), so
	// the lazy analysis solves only those clusters on demand.
	passes, err := check.Select("lockset,deadlock")
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := core.AnalyzeProgram(prog, core.Config{
		Mode:   core.ModeAndersen,
		Lazy:   true,
		Demand: check.DemandFor(prog, passes),
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := check.Run(context.Background(), analysis, check.Options{
		Passes: passes,
		Source: "examples/racedetect",
	})

	solved, demoted := analysis.SolveStats()
	fmt.Printf("solved %d of %d clusters on demand (%d demoted)\n\n",
		solved, len(analysis.Clusters), demoted)
	fmt.Print(check.FormatText(rep))

	fmt.Println("\nexpected: races on stats (ioctl skips stats_lock) and on")
	fmt.Println("debug_flag (never protected); dev_state is race-free.")
}
