// Nullcheck: a second client of the bootstrapped analysis — a
// flow-sensitive null/dangling-dereference checker. It demonstrates what
// flow sensitivity buys over Andersen's analysis: the same dereference is
// safe or unsafe depending on statement order, which a flow-insensitive
// points-to set cannot distinguish.
//
//	go run ./examples/nullcheck
package main

import (
	"fmt"
	"log"

	"bootstrap/internal/core"
	"bootstrap/internal/nullcheck"
)

const program = `
	int a;
	int *ok, *bad, *freed, *maybe;
	int *sink;

	void reset() { bad = null; }

	void main() {
		// Safe: null is overwritten before the dereference.
		ok = null;
		ok = &a;
		sink = *ok;

		// Bug: the helper nulls bad between assignment and use.
		bad = &a;
		reset();
		sink = *bad;

		// Bug: use after free.
		freed = malloc;
		*freed = 1;
		free(freed);
		sink = *freed;

		// Maybe: null on one branch only.
		maybe = &a;
		if (*) { maybe = null; }
		sink = *maybe;
	}
`

func main() {
	analysis, err := core.AnalyzeSource(program, core.Config{Mode: core.ModeAndersen})
	if err != nil {
		log.Fatal(err)
	}
	warnings := nullcheck.Check(analysis)
	fmt.Printf("%d suspicious dereferences:\n", len(warnings))
	fmt.Print(nullcheck.FormatAll(analysis.Prog, warnings))
	fmt.Println("\nnote: the dereference of `ok` is NOT reported — the")
	fmt.Println("flow-sensitive analysis sees the reassignment, which a")
	fmt.Println("flow-insensitive points-to analysis cannot.")
}
