// Parallel: demonstrates that clusters are independent units of work —
// the property that lets the paper parallelize the precise analysis. The
// example generates a driver-sized synthetic workload, runs the
// per-cluster FSCS analysis sequentially and with a worker pool, and also
// reports the paper's greedy 5-machine simulation.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"

	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

func main() {
	b, _ := synth.FindBenchmark("autofs") // 8.3 KLOC, ~3.3k pointers
	src := synth.Generate(b, 1.0)
	fmt.Printf("workload: %s-shaped synthetic program\n", b.Name)

	prog, err := frontend.LowerSource(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d abstract objects, %d functions, %d statements\n\n",
		prog.NumVars(), len(prog.Funcs), len(prog.Nodes))

	run := func(workers int) *core.Analysis {
		a, err := core.AnalyzeSource(src, core.Config{
			Mode:    core.ModeAndersen,
			Workers: workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		return a
	}

	seq := run(1)
	fmt.Printf("sequential:  %d clusters, fscs wall time %v\n",
		len(seq.Clusters), seq.Timing.Wall.Round(1000))

	nw := runtime.GOMAXPROCS(0)
	if nw > 1 {
		par := run(nw)
		fmt.Printf("parallel(%d): fscs wall time %v  (speedup %.1fx)\n",
			nw, par.Timing.Wall.Round(1000),
			float64(seq.Timing.Wall)/float64(par.Timing.Wall))
	} else {
		fmt.Println("parallel:    single CPU available; skipping the worker-pool run")
		fmt.Println("             (the simulation below is what the paper reports anyway)")
	}

	// The paper's experiment: distribute clusters over 5 simulated
	// machines with the greedy pointer-count heuristic and report the
	// maximum part time.
	sim := core.SimulateParallel(seq.Clusters, seq.Timing.PerCluster, 5)
	fmt.Printf("simulated 5 machines (paper's greedy heuristic): %v\n", sim.Round(1000))
	fmt.Printf("  (sequential sum %v -> max part %v)\n",
		seq.Timing.FSCS.Round(1000), sim.Round(1000))
}
