// Quickstart: analyze a small CPL program end to end with the public
// bootstrapping API and print partitions, points-to sets and alias sets.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
)

const program = `
	int a, b, c;
	int *x, *y, *p;
	int **px;

	void swap() {
		int *t;
		t = x;
		x = y;
		y = t;
	}

	void main() {
		x = &a;        // x -> a
		y = &b;        // y -> b
		p = &c;        // p -> c
		px = &x;       // px -> x
		swap();        // now x -> b, y -> a
		*px = p;       // writes through px: x = p, so x -> c
	}
`

func main() {
	// One call runs the whole cascade: Steensgaard partitioning,
	// Andersen clustering of oversized partitions, and the per-cluster
	// summarization-based flow- and context-sensitive analysis.
	analysis, err := core.AnalyzeSource(program, core.Config{
		Mode:              core.ModeAndersen,
		AndersenThreshold: 60, // the paper's empirical threshold
	})
	if err != nil {
		log.Fatal(err)
	}
	prog := analysis.Prog
	exit := prog.Func(prog.Entry).Exit // "at the end of main"

	fmt.Println("== Steensgaard partitions (disjoint alias cover) ==")
	for _, part := range analysis.Steens.Partitions() {
		if len(part) < 2 {
			continue
		}
		fmt.Printf("  {%s}\n", names(prog, part))
	}

	fmt.Printf("\n== Alias cover: %d clusters ==\n", len(analysis.Clusters))
	for _, c := range analysis.Clusters {
		fmt.Printf("  %v\n", c)
	}

	fmt.Println("\n== Flow-sensitive points-to at the end of main ==")
	for _, name := range []string{"x", "y", "p"} {
		v := prog.VarByName[name]
		objs, precise := analysis.PointsTo(v, exit)
		fmt.Printf("  pts(%s) = {%s}  precise=%v\n", name, names(prog, objs), precise)
	}

	fmt.Println("\n== Alias queries ==")
	x, p := prog.VarByName["x"], prog.VarByName["p"]
	fmt.Printf("  x may-alias p: %v   (both point to c after *px = p)\n",
		analysis.MayAlias(x, p, exit))
	fmt.Printf("  x must-alias p: %v\n", analysis.MustAlias(x, p, exit))
	fmt.Printf("  aliases(x) = {%s}\n", names(prog, analysis.Aliases(x, exit)))
}

func names(prog *ir.Program, vs []ir.VarID) string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, prog.VarName(v))
	}
	return strings.Join(out, ", ")
}
