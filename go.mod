module bootstrap

go 1.22
